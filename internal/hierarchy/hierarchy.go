// Package hierarchy builds the class-hierarchy graph of a jimple.Program
// and answers the subtype and dispatch queries that call-graph
// construction (class-hierarchy analysis, CHA) requires.
package hierarchy

import (
	"sort"
	"sync"

	"repro/internal/jimple"
)

// Hierarchy is an immutable view of a program's class hierarchy.
type Hierarchy struct {
	prog     *jimple.Program
	subsOf   map[string][]string // direct subclasses and implementers
	supersOf map[string][]string // direct superclass + interfaces

	// methodIdx maps each defined class to its methods by subsignature
	// (first declaration wins, matching Class.Method's linear scan), and
	// superOf maps it to its superclass name. Together they make method
	// lookup a pair of map probes instead of a linear subsignature render
	// per declared method per query.
	methodIdx map[string]map[string]*jimple.Method
	superOf   map[string]string

	// dispatchMemo caches CHA dispatch results per (kind-band, declared
	// class, subsignature); the same framework callee is invoked from many
	// sites, and each re-resolution used to redo the subtree walk and
	// re-render every candidate's key. Guarded by mu so a Hierarchy stays
	// safe to share between goroutines.
	mu           sync.Mutex
	dispatchMemo map[dispatchKey][]*jimple.Method
}

type dispatchKey struct {
	virtual bool
	class   string
	subsig  string
}

// New indexes the hierarchy of p. Types referenced but not defined in p
// (phantom classes) participate with no members and no known supertypes.
func New(p *jimple.Program) *Hierarchy {
	h := &Hierarchy{
		prog:         p,
		subsOf:       make(map[string][]string),
		supersOf:     make(map[string][]string),
		methodIdx:    make(map[string]map[string]*jimple.Method),
		superOf:      make(map[string]string),
		dispatchMemo: make(map[dispatchKey][]*jimple.Method),
	}
	intern := jimple.NewInterner()
	for _, c := range p.Classes() {
		if c.Super != "" {
			h.supersOf[c.Name] = append(h.supersOf[c.Name], c.Super)
			h.subsOf[c.Super] = append(h.subsOf[c.Super], c.Name)
		}
		for _, i := range c.Interfaces {
			h.supersOf[c.Name] = append(h.supersOf[c.Name], i)
			h.subsOf[i] = append(h.subsOf[i], c.Name)
		}
		mm := make(map[string]*jimple.Method, len(c.Methods))
		for _, m := range c.Methods {
			k := intern.SubSigKey(m.Sig)
			if _, dup := mm[k]; !dup {
				mm[k] = m
			}
		}
		h.methodIdx[c.Name] = mm
		h.superOf[c.Name] = c.Super
	}
	for _, m := range []map[string][]string{h.subsOf, h.supersOf} {
		for k := range m {
			sort.Strings(m[k])
		}
	}
	return h
}

// Program returns the underlying program.
func (h *Hierarchy) Program() *jimple.Program { return h.prog }

// IsSubtype reports whether sub is the same as, or a transitive subtype
// (subclass or implementer) of, super.
func (h *Hierarchy) IsSubtype(sub, super string) bool {
	if sub == super {
		return true
	}
	seen := map[string]bool{sub: true}
	stack := []string{sub}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range h.supersOf[c] {
			if s == super {
				return true
			}
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// SubtypesOf returns all transitive subtypes of t, including t itself,
// sorted by name.
func (h *Hierarchy) SubtypesOf(t string) []string {
	seen := map[string]bool{t: true}
	stack := []string{t}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range h.subsOf[c] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Supertypes returns all transitive supertypes of t (not including t),
// sorted by name.
func (h *Hierarchy) Supertypes(t string) []string {
	seen := map[string]bool{}
	stack := []string{t}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range h.supersOf[c] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// LookupMethod resolves a method by subsignature starting at class c and
// walking up the superclass chain, as Java virtual lookup does. Returns
// nil if no definition is found in the program.
func (h *Hierarchy) LookupMethod(c, subSigKey string) *jimple.Method {
	for cur := c; cur != ""; {
		mm, defined := h.methodIdx[cur]
		if !defined {
			return nil
		}
		if m := mm[subSigKey]; m != nil {
			return m
		}
		cur = h.superOf[cur]
	}
	return nil
}

// Dispatch resolves the possible concrete targets of an invocation using
// CHA. For virtual/interface invokes the result is every definition of the
// subsignature on the declared class's subtree (plus the inherited
// definition if the declared class itself doesn't define it). For special
// and static invokes it is the single static target.
func (h *Hierarchy) Dispatch(e jimple.InvokeExpr) []*jimple.Method {
	virtual := e.Kind != jimple.InvokeStatic && e.Kind != jimple.InvokeSpecial
	sub := e.Callee.SubSigKey()
	key := dispatchKey{virtual: virtual, class: e.Callee.Class, subsig: sub}
	h.mu.Lock()
	if out, ok := h.dispatchMemo[key]; ok {
		h.mu.Unlock()
		return out
	}
	h.mu.Unlock()
	out := h.dispatch(virtual, e.Callee.Class, sub)
	h.mu.Lock()
	h.dispatchMemo[key] = out
	h.mu.Unlock()
	return out
}

// dispatch computes an uncached CHA resolution. Callers must treat the
// returned slice as read-only: it is memoized and shared.
func (h *Hierarchy) dispatch(virtual bool, class, sub string) []*jimple.Method {
	if !virtual {
		if m := h.LookupMethod(class, sub); m != nil && m.HasBody() {
			return []*jimple.Method{m}
		}
		return nil
	}
	var out []*jimple.Method
	seen := make(map[*jimple.Method]bool)
	for _, t := range h.SubtypesOf(class) {
		m := h.LookupMethod(t, sub)
		if m == nil || !m.HasBody() {
			continue
		}
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Sig.Key() < out[j].Sig.Key() })
	return out
}

// DeclaredDispatch resolves only against the declared type (no subtree
// search). It exists as the ablation baseline for the CHA comparison
// benchmark: it misses overrides in subclasses.
func (h *Hierarchy) DeclaredDispatch(e jimple.InvokeExpr) []*jimple.Method {
	if m := h.LookupMethod(e.Callee.Class, e.Callee.SubSigKey()); m != nil && m.HasBody() {
		return []*jimple.Method{m}
	}
	return nil
}
