package hierarchy

import (
	"testing"

	"repro/internal/jimple"
)

func buildProg() *jimple.Program {
	src := `class java.lang.Object {
}
interface x.Iface {
  method abstract m()void
}
class x.A extends java.lang.Object {
  method m()void {
    return
  }
}
class x.B extends x.A implements x.Iface {
  method m()void {
    return
  }
}
class x.C extends x.B {
}
class x.D extends x.A {
  method m()void {
    return
  }
  method only()void {
    return
  }
}`
	return jimple.MustParse(src)
}

func TestIsSubtype(t *testing.T) {
	h := New(buildProg())
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"x.C", "x.A", true},
		{"x.C", "x.Iface", true},
		{"x.B", "x.Iface", true},
		{"x.A", "x.Iface", false},
		{"x.A", "x.B", false},
		{"x.A", "x.A", true},
		{"x.D", "java.lang.Object", true},
		{"ghost.Phantom", "x.A", false},
	}
	for _, c := range cases {
		if got := h.IsSubtype(c.sub, c.super); got != c.want {
			t.Errorf("IsSubtype(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestSubtypesOf(t *testing.T) {
	h := New(buildProg())
	subs := h.SubtypesOf("x.A")
	want := []string{"x.A", "x.B", "x.C", "x.D"}
	if len(subs) != len(want) {
		t.Fatalf("SubtypesOf(x.A) = %v, want %v", subs, want)
	}
	for i := range want {
		if subs[i] != want[i] {
			t.Fatalf("SubtypesOf(x.A) = %v, want %v", subs, want)
		}
	}
	ifaceSubs := h.SubtypesOf("x.Iface")
	if len(ifaceSubs) != 3 { // Iface, B, C
		t.Errorf("SubtypesOf(x.Iface) = %v", ifaceSubs)
	}
}

func TestSupertypes(t *testing.T) {
	h := New(buildProg())
	sup := h.Supertypes("x.C")
	want := map[string]bool{"x.B": true, "x.A": true, "x.Iface": true, "java.lang.Object": true}
	if len(sup) != len(want) {
		t.Fatalf("Supertypes(x.C) = %v", sup)
	}
	for _, s := range sup {
		if !want[s] {
			t.Errorf("unexpected supertype %s", s)
		}
	}
}

func TestLookupMethodWalksSuperChain(t *testing.T) {
	h := New(buildProg())
	// x.C defines nothing; lookup should find x.B.m.
	m := h.LookupMethod("x.C", "m()void")
	if m == nil || m.Sig.Class != "x.B" {
		t.Fatalf("LookupMethod(x.C, m): got %v", m)
	}
	if h.LookupMethod("x.C", "nosuch()void") != nil {
		t.Error("LookupMethod found a ghost method")
	}
}

func TestDispatchVirtual(t *testing.T) {
	h := New(buildProg())
	call := jimple.InvokeExpr{
		Kind:   jimple.InvokeVirtual,
		Base:   "o",
		Callee: jimple.Sig{Class: "x.A", Name: "m", Ret: jimple.TypeVoid},
	}
	targets := h.Dispatch(call)
	// A.m, B.m (covers C), D.m — three distinct bodies.
	if len(targets) != 3 {
		t.Fatalf("Dispatch: got %d targets %v", len(targets), sigKeys(targets))
	}
}

func TestDispatchInterface(t *testing.T) {
	h := New(buildProg())
	call := jimple.InvokeExpr{
		Kind:   jimple.InvokeInterface,
		Base:   "o",
		Callee: jimple.Sig{Class: "x.Iface", Name: "m", Ret: jimple.TypeVoid},
	}
	targets := h.Dispatch(call)
	if len(targets) != 1 || targets[0].Sig.Class != "x.B" {
		t.Fatalf("interface dispatch: %v", sigKeys(targets))
	}
}

func TestDispatchSpecialAndStatic(t *testing.T) {
	h := New(buildProg())
	call := jimple.InvokeExpr{
		Kind:   jimple.InvokeSpecial,
		Base:   "o",
		Callee: jimple.Sig{Class: "x.B", Name: "m", Ret: jimple.TypeVoid},
	}
	targets := h.Dispatch(call)
	if len(targets) != 1 || targets[0].Sig.Class != "x.B" {
		t.Fatalf("special dispatch: %v", sigKeys(targets))
	}
	// Special dispatch on a class that inherits the method resolves up.
	call.Callee.Class = "x.C"
	targets = h.Dispatch(call)
	if len(targets) != 1 || targets[0].Sig.Class != "x.B" {
		t.Fatalf("special dispatch via super chain: %v", sigKeys(targets))
	}
}

func TestDeclaredDispatchMissesOverrides(t *testing.T) {
	h := New(buildProg())
	call := jimple.InvokeExpr{
		Kind:   jimple.InvokeVirtual,
		Base:   "o",
		Callee: jimple.Sig{Class: "x.A", Name: "m", Ret: jimple.TypeVoid},
	}
	targets := h.DeclaredDispatch(call)
	if len(targets) != 1 || targets[0].Sig.Class != "x.A" {
		t.Fatalf("DeclaredDispatch: %v", sigKeys(targets))
	}
}

func TestDispatchPhantomClass(t *testing.T) {
	h := New(buildProg())
	call := jimple.InvokeExpr{
		Kind:   jimple.InvokeVirtual,
		Base:   "o",
		Callee: jimple.Sig{Class: "ghost.Phantom", Name: "m", Ret: jimple.TypeVoid},
	}
	if got := h.Dispatch(call); len(got) != 0 {
		t.Errorf("phantom dispatch should be empty, got %v", sigKeys(got))
	}
}

func sigKeys(ms []*jimple.Method) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Sig.Key()
	}
	return out
}
