package android

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

func TestFrameworkStubsValidate(t *testing.T) {
	fw := Framework()
	if err := fw.Validate(); err != nil {
		t.Fatalf("framework stubs invalid: %v", err)
	}
	for _, name := range []string{
		ClassActivity, ClassService, ClassAsyncTask, ClassToast,
		ClassConnectivityMgr, ClassOnClickListener, ClassIOException,
	} {
		if fw.Class(name) == nil {
			t.Errorf("framework missing stub %s", name)
		}
	}
}

func TestFrameworkHierarchy(t *testing.T) {
	h := hierarchy.New(Framework())
	cases := []struct {
		sub, super string
		want       bool
	}{
		{ClassActivity, ClassContext, true},
		{ClassIntentService, ClassService, true},
		{ClassSocketTimeout, ClassIOException, true},
		{ClassSocketTimeout, ClassException, true},
		{ClassTextView, ClassView, true},
		{ClassService, ClassActivity, false},
		{ClassToast, ClassView, false},
		{ClassThread, ClassRunnable, true},
	}
	for _, c := range cases {
		if got := h.IsSubtype(c.sub, c.super); got != c.want {
			t.Errorf("IsSubtype(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestKindOf(t *testing.T) {
	prog := jimple.NewProgram()
	prog.AddClass(&jimple.Class{Name: "com.app.Main", Super: ClassActivity})
	prog.AddClass(&jimple.Class{Name: "com.app.Sync", Super: ClassService})
	prog.AddClass(&jimple.Class{Name: "com.app.Main$Click", Super: ClassObject, Interfaces: []string{ClassOnClickListener}})
	prog.AddClass(&jimple.Class{Name: "com.app.Util", Super: ClassObject})
	prog.Merge(Framework())
	h := hierarchy.New(prog)

	cases := []struct {
		cls  string
		want ComponentKind
	}{
		{"com.app.Main", KindActivity},
		{"com.app.Sync", KindService},
		{"com.app.Main$Click", KindActivity}, // inner class inherits outer kind
		{"com.app.Util", KindOther},
	}
	for _, c := range cases {
		if got := KindOf(h, c.cls); got != c.want {
			t.Errorf("KindOf(%s) = %v, want %v", c.cls, got, c.want)
		}
	}
}

func TestComponentKindString(t *testing.T) {
	if KindActivity.String() != "Activity" || KindService.String() != "Service" || KindOther.String() != "Other" {
		t.Error("ComponentKind.String misbehaves")
	}
}

func TestConnectivityCheckSigs(t *testing.T) {
	sig := jimple.Sig{
		Class: ClassConnectivityMgr, Name: "getActiveNetworkInfo", Ret: ClassNetworkInfo,
	}
	if !IsConnectivityCheck(sig) {
		t.Error("getActiveNetworkInfo should be a connectivity check")
	}
	other := jimple.Sig{Class: ClassToast, Name: "show", Ret: jimple.TypeVoid}
	if IsConnectivityCheck(other) {
		t.Error("Toast.show is not a connectivity check")
	}
}

func TestIsUIAlertCall(t *testing.T) {
	if !IsUIAlertCall(jimple.Sig{Class: ClassToast, Name: "show", Ret: jimple.TypeVoid}) {
		t.Error("Toast.show should be a UI alert call")
	}
	if IsUIAlertCall(jimple.Sig{Class: ClassLog, Name: "d", Ret: jimple.TypeInt}) {
		t.Error("Log.d must not count as a UI alert")
	}
}

func TestAsyncDispatchTable(t *testing.T) {
	table := AsyncDispatches()
	var sawAsyncTask, sawHandlerPost, sawSetOnClick bool
	for _, d := range table {
		if d.TriggerClass == ClassAsyncTask && d.TriggerSubsig == "execute()void" {
			sawAsyncTask = true
			if d.ArgIndex != -1 {
				t.Error("AsyncTask.execute should dispatch on the receiver")
			}
			joined := strings.Join(d.CalleeSubsigs, ",")
			if !strings.Contains(joined, "doInBackground") || !strings.Contains(joined, "onPostExecute") {
				t.Errorf("AsyncTask dispatch incomplete: %v", d.CalleeSubsigs)
			}
		}
		if d.TriggerClass == ClassHandler && strings.HasPrefix(d.TriggerSubsig, "post(") {
			sawHandlerPost = true
			if d.ArgIndex != 0 {
				t.Error("Handler.post should dispatch on arg 0")
			}
		}
		if d.TriggerClass == ClassView && strings.HasPrefix(d.TriggerSubsig, "setOnClickListener") {
			sawSetOnClick = true
		}
	}
	if !sawAsyncTask || !sawHandlerPost || !sawSetOnClick {
		t.Errorf("async dispatch table missing entries: asynctask=%v handler=%v onclick=%v",
			sawAsyncTask, sawHandlerPost, sawSetOnClick)
	}
}

func TestLifecycleTables(t *testing.T) {
	if len(LifecycleSubsigs(ClassActivity)) == 0 {
		t.Error("Activity lifecycle table empty")
	}
	for _, base := range ComponentBases() {
		for _, sub := range LifecycleSubsigs(base) {
			if _, err := jimple.ParseSigKey(base + "." + sub); err != nil {
				t.Errorf("lifecycle subsig %q of %s does not parse: %v", sub, base, err)
			}
		}
	}
	for _, l := range ListenerIfaces() {
		for _, sub := range ListenerSubsigs(l) {
			if _, err := jimple.ParseSigKey(l + "." + sub); err != nil {
				t.Errorf("listener subsig %q of %s does not parse: %v", sub, l, err)
			}
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{
		Package:    "com.example.app",
		Label:      "Example App",
		Activities: []string{"com.example.app.Main", "com.example.app.Settings"},
		Services:   []string{"com.example.app.Sync"},
		Receivers:  []string{"com.example.app.BootReceiver"},
	}
	m.Normalize()
	enc := m.Encode()
	got, err := DecodeManifest(enc)
	if err != nil {
		t.Fatalf("DecodeManifest: %v", err)
	}
	if got.Encode() != enc {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", enc, got.Encode())
	}
	if !got.DeclaresActivity("com.example.app.Main") {
		t.Error("DeclaresActivity lost a component")
	}
	if got.DeclaresService("com.example.app.Main") {
		t.Error("DeclaresService false positive")
	}
}

func TestManifestValidate(t *testing.T) {
	if err := (&Manifest{}).Validate(); err == nil {
		t.Error("empty manifest should fail validation")
	}
	if _, err := DecodeManifest("package \nactivity x"); err == nil {
		t.Error("manifest without a package should fail to decode")
	}
	if _, err := DecodeManifest("bogus line here\n"); err == nil {
		t.Error("unknown manifest key should fail")
	}
}

func TestManifestNormalizeDedups(t *testing.T) {
	m := &Manifest{Package: "p", Activities: []string{"b", "a", "b"}}
	m.Normalize()
	if len(m.Activities) != 2 || m.Activities[0] != "a" || m.Activities[1] != "b" {
		t.Errorf("Normalize: %v", m.Activities)
	}
}

// Property: manifests with arbitrary component names round-trip through
// Encode/Decode (names restricted to non-empty identifier-ish strings).
func TestQuickManifestRoundTrip(t *testing.T) {
	clean := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '.' {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "c"
		}
		return b.String()
	}
	f := func(pkg string, acts []string, svcs []string) bool {
		m := &Manifest{Package: "p." + clean(pkg)}
		for _, a := range acts {
			m.Activities = append(m.Activities, "a."+clean(a))
		}
		for _, s := range svcs {
			m.Services = append(m.Services, "s."+clean(s))
		}
		m.Normalize()
		got, err := DecodeManifest(m.Encode())
		if err != nil {
			return false
		}
		return got.Encode() == m.Encode()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
