package android

import (
	"fmt"
	"sort"
	"strings"
)

// Manifest models the AndroidManifest.xml declarations the analyses
// consume: the app package name and its declared components. NChecker
// reads these to decide whether an entry point is user-facing (Activity)
// or background (Service) — paper §4.4.2.
type Manifest struct {
	Package    string
	Label      string
	Activities []string
	Services   []string
	Receivers  []string
}

// Normalize sorts the component lists and removes duplicates; encoding and
// comparison assume normalized manifests.
func (m *Manifest) Normalize() {
	m.Activities = dedupSorted(m.Activities)
	m.Services = dedupSorted(m.Services)
	m.Receivers = dedupSorted(m.Receivers)
}

func dedupSorted(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	sort.Strings(in)
	out := in[:1]
	for _, s := range in[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// DeclaresActivity reports whether cls is declared as an activity.
func (m *Manifest) DeclaresActivity(cls string) bool { return contains(m.Activities, cls) }

// DeclaresService reports whether cls is declared as a service.
func (m *Manifest) DeclaresService(cls string) bool { return contains(m.Services, cls) }

// DeclaresReceiver reports whether cls is declared as a receiver.
func (m *Manifest) DeclaresReceiver(cls string) bool { return contains(m.Receivers, cls) }

func contains(sorted []string, s string) bool {
	i := sort.SearchStrings(sorted, s)
	return i < len(sorted) && sorted[i] == s
}

// Validate checks the manifest for structural problems.
func (m *Manifest) Validate() error {
	if m.Package == "" {
		return fmt.Errorf("android: manifest has no package name")
	}
	for _, lists := range [][]string{m.Activities, m.Services, m.Receivers} {
		for _, c := range lists {
			if c == "" {
				return fmt.Errorf("android: manifest of %s declares an empty component name", m.Package)
			}
		}
	}
	return nil
}

// Encode renders the manifest in a line-oriented textual form (the
// stand-in for binary AndroidManifest.xml inside our APK container).
func (m *Manifest) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "package %s\n", m.Package)
	if m.Label != "" {
		fmt.Fprintf(&b, "label %s\n", m.Label)
	}
	for _, a := range m.Activities {
		fmt.Fprintf(&b, "activity %s\n", a)
	}
	for _, s := range m.Services {
		fmt.Fprintf(&b, "service %s\n", s)
	}
	for _, r := range m.Receivers {
		fmt.Fprintf(&b, "receiver %s\n", r)
	}
	return b.String()
}

// DecodeManifest parses the form produced by Encode.
func DecodeManifest(src string) (*Manifest, error) {
	m := &Manifest{}
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("android: manifest line %d malformed: %q", i+1, line)
		}
		key, val := fields[0], strings.TrimSpace(fields[1])
		switch key {
		case "package":
			m.Package = val
		case "label":
			m.Label = val
		case "activity":
			m.Activities = append(m.Activities, val)
		case "service":
			m.Services = append(m.Services, val)
		case "receiver":
			m.Receivers = append(m.Receivers, val)
		default:
			return nil, fmt.Errorf("android: manifest line %d has unknown key %q", i+1, key)
		}
	}
	m.Normalize()
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}
