// Package android models the slice of the Android framework that NChecker's
// analyses depend on: component kinds (Activity vs. Service), lifecycle and
// UI callback entry points, asynchronous dispatch constructs (AsyncTask,
// Handler, Thread, listeners), the AndroidManifest, and the framework
// class stubs apps link against.
//
// The real NChecker consumes these facts from the Android SDK jars via
// Soot; here they are encoded directly, which is equivalent for the
// analyses because only names, signatures and the hierarchy matter — the
// framework's code is never analyzed.
package android

import (
	"sort"

	"repro/internal/jimple"
)

// Well-known framework class names.
const (
	ClassObject            = "java.lang.Object"
	ClassActivity          = "android.app.Activity"
	ClassService           = "android.app.Service"
	ClassIntentService     = "android.app.IntentService"
	ClassBroadcastReceiver = "android.content.BroadcastReceiver"
	ClassApplication       = "android.app.Application"
	ClassAsyncTask         = "android.os.AsyncTask"
	ClassHandler           = "android.os.Handler"
	ClassThread            = "java.lang.Thread"
	ClassRunnable          = "java.lang.Runnable"
	ClassTimer             = "java.util.Timer"
	ClassTimerTask         = "java.util.TimerTask"
	ClassView              = "android.view.View"
	ClassOnClickListener   = "android.view.View$OnClickListener"
	ClassContext           = "android.content.Context"
	ClassIntent            = "android.content.Intent"
	ClassBundle            = "android.os.Bundle"
	ClassConnectivityMgr   = "android.net.ConnectivityManager"
	ClassNetworkInfo       = "android.net.NetworkInfo"
	ClassNetwork           = "android.net.Network"
	ClassNetworkCallback   = "android.net.ConnectivityManager$NetworkCallback"

	// UI alert classes — the five classes §4.4.3 of the paper lists as the
	// ways Android apps surface messages to users.
	ClassAlertDialog    = "android.app.AlertDialog"
	ClassDialogFragment = "android.app.DialogFragment"
	ClassToast          = "android.widget.Toast"
	ClassTextView       = "android.widget.TextView"
	ClassImageView      = "android.widget.ImageView"

	ClassIOException     = "java.io.IOException"
	ClassSocketTimeout   = "java.net.SocketTimeoutException"
	ClassException       = "java.lang.Exception"
	ClassRuntimeExc      = "java.lang.RuntimeException"
	ClassNullPointerExc  = "java.lang.NullPointerException"
	ClassInterruptedExc  = "java.lang.InterruptedException"
	ClassString          = jimple.TypeString
	ClassCharSequence    = "java.lang.CharSequence"
	ClassThrowable       = "java.lang.Throwable"
	ClassLog             = "android.util.Log"
	ClassSharedPrefs     = "android.content.SharedPreferences"
	ClassProgressDialog  = "android.app.ProgressDialog"
	ClassNotificationMgr = "android.app.NotificationManager"
)

// UIAlertClasses is the set of classes whose method calls count as showing
// a user-visible message (paper §4.4.3).
var UIAlertClasses = map[string]bool{
	ClassAlertDialog:    true,
	ClassDialogFragment: true,
	ClassToast:          true,
	ClassTextView:       true,
	ClassImageView:      true,
}

// ComponentKind classifies an app class by its role in the Android
// component model.
type ComponentKind uint8

const (
	KindOther ComponentKind = iota
	KindActivity
	KindService
	KindReceiver
	KindApplication
)

func (k ComponentKind) String() string {
	switch k {
	case KindActivity:
		return "Activity"
	case KindService:
		return "Service"
	case KindReceiver:
		return "BroadcastReceiver"
	case KindApplication:
		return "Application"
	}
	return "Other"
}

// Subtyper answers transitive subtype queries; satisfied by
// *hierarchy.Hierarchy. Accepting an interface keeps this package free of
// a dependency cycle.
type Subtyper interface {
	IsSubtype(sub, super string) bool
}

// KindOf classifies cls. Inner classes inherit the kind of their outermost
// enclosing class, matching how NChecker attributes listener callbacks to
// the component that hosts them (paper §4.4.2).
func KindOf(h Subtyper, cls string) ComponentKind {
	k := directKind(h, cls)
	if k != KindOther {
		return k
	}
	if outer := jimple.OuterClass(cls); outer != cls {
		return directKind(h, outer)
	}
	return KindOther
}

func directKind(h Subtyper, cls string) ComponentKind {
	switch {
	case h.IsSubtype(cls, ClassActivity):
		return KindActivity
	case h.IsSubtype(cls, ClassService):
		return KindService
	case h.IsSubtype(cls, ClassBroadcastReceiver):
		return KindReceiver
	case h.IsSubtype(cls, ClassApplication):
		return KindApplication
	}
	return KindOther
}

// lifecycleEntryPoints maps a component base class to the subsignature
// keys of its framework-invoked lifecycle methods.
var lifecycleEntryPoints = map[string][]string{
	ClassActivity: {
		"onCreate(android.os.Bundle)void",
		"onStart()void",
		"onResume()void",
		"onPause()void",
		"onStop()void",
		"onDestroy()void",
		"onRestart()void",
		"onOptionsItemSelected(android.view.MenuItem)boolean",
		"onActivityResult(int,int,android.content.Intent)void",
	},
	ClassService: {
		"onCreate()void",
		"onStartCommand(android.content.Intent,int,int)int",
		"onDestroy()void",
		"onBind(android.content.Intent)android.os.IBinder",
	},
	ClassIntentService: {
		"onHandleIntent(android.content.Intent)void",
	},
	ClassBroadcastReceiver: {
		"onReceive(android.content.Context,android.content.Intent)void",
	},
	ClassApplication: {
		"onCreate()void",
	},
}

// listenerEntryPoints maps a listener interface to the subsignatures the
// framework invokes on registered implementations.
var listenerEntryPoints = map[string][]string{
	ClassOnClickListener:                                                 {"onClick(android.view.View)void"},
	"android.view.View$OnLongClickListener":                              {"onLongClick(android.view.View)boolean"},
	"android.widget.AdapterView$OnItemClickListener":                     {"onItemClick(android.widget.AdapterView,android.view.View,int,long)void"},
	"android.content.SharedPreferences$OnSharedPreferenceChangeListener": {"onSharedPreferenceChanged(android.content.SharedPreferences,java.lang.String)void"},
	"android.text.TextWatcher":                                           {"afterTextChanged(android.text.Editable)void"},
}

// LifecycleSubsigs returns the lifecycle entry subsignatures for the given
// component base class ("" slice when unknown).
func LifecycleSubsigs(base string) []string { return lifecycleEntryPoints[base] }

// ComponentBases returns the component base classes in deterministic order.
func ComponentBases() []string {
	out := make([]string, 0, len(lifecycleEntryPoints))
	for k := range lifecycleEntryPoints {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ListenerIfaces returns the listener interfaces in deterministic order.
func ListenerIfaces() []string {
	out := make([]string, 0, len(listenerEntryPoints))
	for k := range listenerEntryPoints {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ListenerSubsigs returns the callback subsignatures of a listener
// interface.
func ListenerSubsigs(iface string) []string { return listenerEntryPoints[iface] }

// AsyncDispatch describes a framework call that transfers control to a
// callback on some object: calling Trigger (matched by declaring class +
// subsignature on any subtype) causes the framework to later invoke each
// of CalleeSubsigs on the dispatch target. The target is the receiver when
// ArgIndex < 0, otherwise the ArgIndex'th argument.
type AsyncDispatch struct {
	TriggerClass  string
	TriggerSubsig string
	ArgIndex      int // -1 => receiver
	CalleeSubsigs []string
}

// AsyncDispatches returns the async-dispatch table: the constructs §4.4 of
// the paper names (AsyncTask, Handler, Thread, listener registration,
// Timer). The table is a shared package-level constant — callers must not
// mutate it (call-graph construction queries it once per invoke site, so
// rebuilding it per call was a measurable allocation source).
func AsyncDispatches() []AsyncDispatch { return asyncDispatchTable }

var asyncDispatchTable = []AsyncDispatch{
	{
		TriggerClass:  ClassAsyncTask,
		TriggerSubsig: "execute()void",
		ArgIndex:      -1,
		CalleeSubsigs: []string{
			"onPreExecute()void",
			"doInBackground()void",
			"onPostExecute()void",
		},
	},
	{
		TriggerClass:  ClassThread,
		TriggerSubsig: "start()void",
		ArgIndex:      -1,
		CalleeSubsigs: []string{"run()void"},
	},
	{
		TriggerClass:  ClassHandler,
		TriggerSubsig: "post(java.lang.Runnable)boolean",
		ArgIndex:      0,
		CalleeSubsigs: []string{"run()void"},
	},
	{
		TriggerClass:  ClassHandler,
		TriggerSubsig: "postDelayed(java.lang.Runnable,long)boolean",
		ArgIndex:      0,
		CalleeSubsigs: []string{"run()void"},
	},
	{
		TriggerClass:  ClassView,
		TriggerSubsig: "setOnClickListener(android.view.View$OnClickListener)void",
		ArgIndex:      0,
		CalleeSubsigs: []string{"onClick(android.view.View)void"},
	},
	{
		TriggerClass:  ClassTimer,
		TriggerSubsig: "schedule(java.util.TimerTask,long)void",
		ArgIndex:      0,
		CalleeSubsigs: []string{"run()void"},
	},
	{
		TriggerClass:  ClassTimer,
		TriggerSubsig: "scheduleAtFixedRate(java.util.TimerTask,long,long)void",
		ArgIndex:      0,
		CalleeSubsigs: []string{"run()void"},
	},
}

// ConnectivityCheckSigs lists framework methods whose invocation
// constitutes a network-connectivity check (paper Table 5:
// getNetworkInfo / getActiveNetworkInfo and the NetworkInfo.isConnected
// family).
var ConnectivityCheckSigs = map[string]bool{
	"android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo": true,
	"android.net.ConnectivityManager.getNetworkInfo(int)android.net.NetworkInfo":    true,
	"android.net.NetworkInfo.isConnected()boolean":                                  true,
	"android.net.NetworkInfo.isConnectedOrConnecting()boolean":                      true,
}

// IsConnectivityCheck reports whether sig is a connectivity-check API.
// The class gate runs first so the overwhelmingly common miss never
// renders a signature key.
func IsConnectivityCheck(sig jimple.Sig) bool {
	if sig.Class != ClassConnectivityMgr && sig.Class != ClassNetworkInfo {
		return false
	}
	return ConnectivityCheckSigs[sig.Key()]
}

// NetworkCallbackSubsigs lists the ConnectivityManager.NetworkCallback
// methods the framework invokes on connectivity transitions. Checker 5
// treats implementations as network-state handlers, alongside
// BroadcastReceiver.onReceive.
var NetworkCallbackSubsigs = []string{
	"onAvailable(android.net.Network)void",
	"onLost(android.net.Network)void",
}

// CacheFallbackSigs lists framework methods whose invocation counts as
// reading locally cached content — the offline fallback Checker 5 accepts
// in a network-state handler in place of a retried request.
var CacheFallbackSigs = map[string]bool{
	"android.content.SharedPreferences.getString(java.lang.String,java.lang.String)java.lang.String": true,
	"android.content.SharedPreferences.getInt(java.lang.String,int)int":                              true,
	"android.content.SharedPreferences.getBoolean(java.lang.String,boolean)boolean":                  true,
}

// IsCacheFallback reports whether sig reads cached content.
func IsCacheFallback(sig jimple.Sig) bool {
	return CacheFallbackSigs[sig.Key()]
}

// WaitCallSigs lists blocking-wait calls. Checker 6 treats a connectivity
// check separated from its request by one of these as stale: the checked
// state can change while the thread sleeps. Durations are ignored — a
// short sleep also flags, a documented false-positive source.
var WaitCallSigs = map[string]bool{
	"java.lang.Thread.sleep(long)void": true,
}

// IsWaitCall reports whether sig is a blocking wait. Class-gated like
// IsConnectivityCheck: misses must not render keys.
func IsWaitCall(sig jimple.Sig) bool {
	if sig.Class != ClassThread {
		return false
	}
	return WaitCallSigs[sig.Key()]
}

// IsUIAlertCall reports whether an invocation of sig counts as displaying
// a user-visible alert (any method on one of the five UI alert classes).
func IsUIAlertCall(sig jimple.Sig) bool {
	return UIAlertClasses[sig.Class]
}
