package android

import (
	"sync"

	"repro/internal/jimple"
)

var (
	frameworkOnce sync.Once
	frameworkProg *jimple.Program
)

// Framework returns a program containing stub definitions of the framework
// classes apps extend and call. The stubs carry hierarchy information and
// method signatures only — no bodies — which is all the analyses consume.
// Merge it under an app's program before building a hierarchy:
//
//	prog.Merge(android.Framework())
//
// The program is built once per process and shared; it is read-only after
// construction (Program.Merge copies class pointers without mutating the
// source).
func Framework() *jimple.Program {
	frameworkOnce.Do(func() { frameworkProg = buildFramework() })
	return frameworkProg
}

func buildFramework() *jimple.Program {
	p := jimple.NewProgram()

	cls := func(name, super string, ifaces ...string) *jimple.Class {
		c := &jimple.Class{Name: name, Super: super, Interfaces: ifaces}
		p.AddClass(c)
		return c
	}
	iface := func(name string) *jimple.Class {
		c := &jimple.Class{Name: name, IsIface: true}
		p.AddClass(c)
		return c
	}
	abstractMethod := func(c *jimple.Class, name string, params []string, ret string) {
		c.AddMethod(&jimple.Method{
			Sig:      jimple.Sig{Name: name, Params: params, Ret: ret},
			Abstract: true,
		})
	}

	cls(ClassObject, "")
	cls(ClassThrowable, ClassObject)
	cls(ClassException, ClassThrowable)
	cls(ClassRuntimeExc, ClassException)
	cls(ClassNullPointerExc, ClassRuntimeExc)
	cls(ClassIOException, ClassException)
	cls(ClassSocketTimeout, ClassIOException)
	cls(ClassInterruptedExc, ClassException)
	cls(ClassString, ClassObject)
	iface(ClassCharSequence)
	iface(ClassRunnable)

	thread := cls(ClassThread, ClassObject, ClassRunnable)
	abstractMethod(thread, "start", nil, jimple.TypeVoid)
	abstractMethod(thread, "run", nil, jimple.TypeVoid)
	abstractMethod(thread, "sleep", []string{"long"}, jimple.TypeVoid)

	timer := cls(ClassTimer, ClassObject)
	abstractMethod(timer, "schedule", []string{ClassTimerTask, "long"}, jimple.TypeVoid)
	abstractMethod(timer, "scheduleAtFixedRate", []string{ClassTimerTask, "long", "long"}, jimple.TypeVoid)
	timerTask := cls(ClassTimerTask, ClassObject, ClassRunnable)
	abstractMethod(timerTask, "run", nil, jimple.TypeVoid)

	ctx := cls(ClassContext, ClassObject)
	abstractMethod(ctx, "getSystemService", []string{ClassString}, ClassObject)
	intent := cls(ClassIntent, ClassObject)
	abstractMethod(intent, "setClassName", []string{ClassString}, jimple.TypeVoid)
	abstractMethod(intent, "setAction", []string{ClassString}, jimple.TypeVoid)
	abstractMethod(intent, "putExtra", []string{ClassString, ClassString}, jimple.TypeVoid)
	cls(ClassBundle, ClassObject)

	activity := cls(ClassActivity, ClassContext)
	for _, sub := range LifecycleSubsigs(ClassActivity) {
		sig, _ := jimple.ParseSigKey(ClassActivity + "." + sub)
		activity.AddMethod(&jimple.Method{Sig: sig, Abstract: true})
	}
	abstractMethod(activity, "findViewById", []string{"int"}, ClassView)
	abstractMethod(activity, "startActivity", []string{ClassIntent}, jimple.TypeVoid)
	abstractMethod(activity, "runOnUiThread", []string{ClassRunnable}, jimple.TypeVoid)
	abstractMethod(activity, "sendBroadcast", []string{ClassIntent}, jimple.TypeVoid)

	service := cls(ClassService, ClassContext)
	for _, sub := range LifecycleSubsigs(ClassService) {
		sig, _ := jimple.ParseSigKey(ClassService + "." + sub)
		service.AddMethod(&jimple.Method{Sig: sig, Abstract: true})
	}
	intentService := cls(ClassIntentService, ClassService)
	for _, sub := range LifecycleSubsigs(ClassIntentService) {
		sig, _ := jimple.ParseSigKey(ClassIntentService + "." + sub)
		intentService.AddMethod(&jimple.Method{Sig: sig, Abstract: true})
	}
	receiver := cls(ClassBroadcastReceiver, ClassObject)
	for _, sub := range LifecycleSubsigs(ClassBroadcastReceiver) {
		sig, _ := jimple.ParseSigKey(ClassBroadcastReceiver + "." + sub)
		receiver.AddMethod(&jimple.Method{Sig: sig, Abstract: true})
	}
	app := cls(ClassApplication, ClassContext)
	for _, sub := range LifecycleSubsigs(ClassApplication) {
		sig, _ := jimple.ParseSigKey(ClassApplication + "." + sub)
		app.AddMethod(&jimple.Method{Sig: sig, Abstract: true})
	}

	task := cls(ClassAsyncTask, ClassObject)
	abstractMethod(task, "execute", nil, jimple.TypeVoid)
	abstractMethod(task, "onPreExecute", nil, jimple.TypeVoid)
	abstractMethod(task, "doInBackground", nil, jimple.TypeVoid)
	abstractMethod(task, "onPostExecute", nil, jimple.TypeVoid)
	abstractMethod(task, "cancel", []string{jimple.TypeBoolean}, jimple.TypeBoolean)

	handler := cls(ClassHandler, ClassObject)
	abstractMethod(handler, "post", []string{ClassRunnable}, jimple.TypeBoolean)
	abstractMethod(handler, "postDelayed", []string{ClassRunnable, "long"}, jimple.TypeBoolean)
	abstractMethod(handler, "sendEmptyMessage", []string{"int"}, jimple.TypeBoolean)

	view := cls(ClassView, ClassObject)
	abstractMethod(view, "setOnClickListener", []string{ClassOnClickListener}, jimple.TypeVoid)
	abstractMethod(view, "setVisibility", []string{"int"}, jimple.TypeVoid)
	iface(ClassOnClickListener)
	for _, l := range ListenerIfaces() {
		if p.Class(l) == nil {
			iface(l)
		}
	}

	cm := cls(ClassConnectivityMgr, ClassObject)
	abstractMethod(cm, "getActiveNetworkInfo", nil, ClassNetworkInfo)
	abstractMethod(cm, "getNetworkInfo", []string{"int"}, ClassNetworkInfo)
	abstractMethod(cm, "registerNetworkCallback", []string{ClassNetworkCallback}, jimple.TypeVoid)
	ni := cls(ClassNetworkInfo, ClassObject)
	abstractMethod(ni, "isConnected", nil, jimple.TypeBoolean)
	abstractMethod(ni, "isConnectedOrConnecting", nil, jimple.TypeBoolean)
	cls(ClassNetwork, ClassObject)
	ncb := cls(ClassNetworkCallback, ClassObject)
	for _, sub := range NetworkCallbackSubsigs {
		sig, _ := jimple.ParseSigKey(ClassNetworkCallback + "." + sub)
		ncb.AddMethod(&jimple.Method{Sig: sig, Abstract: true})
	}
	prefs := cls(ClassSharedPrefs, ClassObject)
	abstractMethod(prefs, "getString", []string{ClassString, ClassString}, ClassString)
	abstractMethod(prefs, "getInt", []string{ClassString, "int"}, jimple.TypeInt)
	abstractMethod(prefs, "getBoolean", []string{ClassString, jimple.TypeBoolean}, jimple.TypeBoolean)

	toast := cls(ClassToast, ClassObject)
	abstractMethod(toast, "makeText", []string{ClassContext, ClassCharSequence, "int"}, ClassToast)
	abstractMethod(toast, "show", nil, jimple.TypeVoid)
	tv := cls(ClassTextView, ClassView)
	abstractMethod(tv, "setText", []string{ClassCharSequence}, jimple.TypeVoid)
	iv := cls(ClassImageView, ClassView)
	abstractMethod(iv, "setImageResource", []string{"int"}, jimple.TypeVoid)
	ad := cls(ClassAlertDialog, ClassObject)
	abstractMethod(ad, "show", nil, jimple.TypeVoid)
	df := cls(ClassDialogFragment, ClassObject)
	abstractMethod(df, "show", nil, jimple.TypeVoid)
	pd := cls(ClassProgressDialog, ClassAlertDialog)
	abstractMethod(pd, "dismiss", nil, jimple.TypeVoid)

	logc := cls(ClassLog, ClassObject)
	logc.AddMethod(&jimple.Method{
		Sig:      jimple.Sig{Name: "d", Params: []string{ClassString, ClassString}, Ret: jimple.TypeInt},
		Static:   true,
		Abstract: true,
	})
	logc.AddMethod(&jimple.Method{
		Sig:      jimple.Sig{Name: "e", Params: []string{ClassString, ClassString}, Ret: jimple.TypeInt},
		Static:   true,
		Abstract: true,
	})

	return p
}
