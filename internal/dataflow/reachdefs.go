// Package dataflow implements the program analyses NChecker's checkers are
// built from: reaching definitions, constant propagation, forward taint
// tracking, backward slicing over data and control dependence, and an
// interprocedural must-precede analysis. All intraprocedural analyses
// operate on internal/cfg graphs; the interprocedural analysis operates on
// internal/callgraph graphs.
package dataflow

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/jimple"
)

// ReachDefs holds the result of a reaching-definitions analysis of one
// method: for each statement, the set of definition sites (statement
// indexes) whose values may reach it.
type ReachDefs struct {
	g     *cfg.Graph
	words int
	in    [][]uint64 // per node, bitset over def statement indexes
	defAt []string   // defAt[i] = local defined by stmt i, or ""
}

// NewReachDefs runs the classic gen/kill worklist algorithm on g.
func NewReachDefs(g *cfg.Graph) *ReachDefs {
	body := g.Method.Body
	n := len(body)
	r := &ReachDefs{
		g:     g,
		words: (n + 63) / 64,
		in:    make([][]uint64, g.NumNodes()),
		defAt: make([]string, n),
	}
	defsOf := make(map[string][]int)
	for i, s := range body {
		if d := jimple.DefOf(s); d != "" {
			r.defAt[i] = d
			defsOf[d] = append(defsOf[d], i)
		}
	}
	// Slice every per-node bitset out of one backing array (one for the
	// retained in-sets, one for the transient out scratch): two allocations
	// instead of two per node.
	inBack := make([]uint64, g.NumNodes()*r.words)
	outBack := make([]uint64, g.NumNodes()*r.words)
	out := make([][]uint64, g.NumNodes())
	for i := range r.in {
		r.in[i] = inBack[i*r.words : (i+1)*r.words : (i+1)*r.words]
		out[i] = outBack[i*r.words : (i+1)*r.words : (i+1)*r.words]
	}
	// Worklist over nodes (statement indexes; the synthetic exit has no
	// body statement and acts as a plain join).
	work := make([]int, 0, g.NumNodes())
	inWork := make([]bool, g.NumNodes())
	for i := 0; i < g.NumNodes(); i++ {
		work = append(work, i)
		inWork[i] = true
	}
	for head := 0; head < len(work); head++ {
		u := work[head]
		inWork[u] = false
		// in[u] = union of out[p]
		for w := 0; w < r.words; w++ {
			r.in[u][w] = 0
		}
		for _, p := range g.Preds(u) {
			for w := 0; w < r.words; w++ {
				r.in[u][w] |= out[p][w]
			}
		}
		// out[u] = gen(u) ∪ (in[u] − kill(u))
		changed := false
		for w := 0; w < r.words; w++ {
			nv := r.in[u][w]
			if u < n && r.defAt[u] != "" {
				for _, d := range defsOf[r.defAt[u]] {
					if d/64 == w {
						nv &^= 1 << uint(d%64)
					}
				}
				if u/64 == w {
					nv |= 1 << uint(u%64)
				}
			}
			if out[u][w] != nv {
				out[u][w] = nv
				changed = true
			}
		}
		if changed {
			for _, s := range g.Succs(u) {
				if !inWork[s] {
					inWork[s] = true
					work = append(work, s)
				}
			}
		}
	}
	return r
}

// DefsReaching returns the definition sites of local that reach stmt
// (i.e. may supply its value when stmt reads it), sorted ascending.
func (r *ReachDefs) DefsReaching(stmt int, local string) []int {
	var out []int
	bits := r.in[stmt]
	for i := 0; i < len(r.defAt); i++ {
		if r.defAt[i] == local && bits[i/64]&(1<<uint(i%64)) != 0 {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// DefOfStmt returns the local defined by statement i, or "".
func (r *ReachDefs) DefOfStmt(i int) string {
	if i < 0 || i >= len(r.defAt) {
		return ""
	}
	return r.defAt[i]
}
