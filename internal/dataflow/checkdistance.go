package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/jimple"
)

// StaleReason classifies why a connectivity check no longer vouches for
// the network state at its dominated use (Checker 6).
type StaleReason string

const (
	// StaleLoop: the use sits in a loop the check is outside of — the
	// check ran once, the use repeats across iterations that can span
	// connectivity transitions.
	StaleLoop StaleReason = "loop"
	// StaleWait: a blocking wait runs between the check and the use, so
	// the checked state can have changed while the thread slept.
	StaleWait StaleReason = "wait"
	// StaleCallbackBoundary: the check and the use are separated by an
	// asynchronous dispatch (AsyncTask, Handler post, Thread start); the
	// callback runs at an unbounded later time. Detected by the checker
	// from the call graph, not by this intra-method analysis.
	StaleCallbackBoundary StaleReason = "callback-boundary"
)

// CheckDistance measures check-to-use distance within one method: given
// a guard statement that dominates a request statement, it decides
// whether the guard is still fresh at the request or separated from it
// by a loop or a blocking wait. Built on the CFG's dominator tree so
// "between" has a path-insensitive, must-style meaning: a wait only
// counts when every path from the check to the use passes it.
//
// Durations are deliberately ignored — a 100 ms sleep flags like a 10 s
// one — a documented false-positive source (DESIGN.md §11).
type CheckDistance struct {
	g     *cfg.Graph
	idom  []int
	loops []*cfg.Loop
	waits []int // statement indexes of blocking-wait calls, ascending
}

// WaitFunc reports whether the invocation at stmt is a blocking wait.
type WaitFunc func(stmt int, inv jimple.InvokeExpr) bool

// NewCheckDistance builds the analysis over a method's CFG, a
// precomputed dominator tree (cfg.Graph.Dominators), its natural loops,
// and the wait predicate.
func NewCheckDistance(g *cfg.Graph, idom []int, loops []*cfg.Loop, isWait WaitFunc) *CheckDistance {
	cd := &CheckDistance{g: g, idom: idom, loops: loops}
	for i, s := range g.Method.Body {
		if inv, ok := jimple.InvokeOf(s); ok && isWait(i, inv) {
			cd.waits = append(cd.waits, i)
		}
	}
	return cd
}

// Dominates reports whether statement a dominates statement b.
func (cd *CheckDistance) Dominates(a, b int) bool {
	return cfg.Dominates(cd.idom, a, b)
}

// Stale reports whether the guard at check is stale at use, and why.
// check must dominate use (callers establish that); a guard is stale
// when the use repeats in a loop the check is outside of, or when a
// wait provably runs between them (check dominates the wait, the wait
// dominates the use). A re-check after the wait therefore reads as
// fresh: no wait follows it on the way to the use.
func (cd *CheckDistance) Stale(check, use int) (StaleReason, bool) {
	for _, l := range cd.loops {
		if l.Contains(use) && !l.Contains(check) {
			return StaleLoop, true
		}
	}
	for _, w := range cd.waits {
		if w == check || w == use {
			continue
		}
		if cfg.Dominates(cd.idom, check, w) && cfg.Dominates(cd.idom, w, use) {
			return StaleWait, true
		}
	}
	return "", false
}
