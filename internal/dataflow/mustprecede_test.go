package dataflow

import (
	"testing"

	"repro/internal/android"
	"repro/internal/callgraph"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

// connectivity-check gen function shared by the tests.
func checkGen(_ *jimple.Method, _ int, inv jimple.InvokeExpr) bool {
	return android.IsConnectivityCheck(inv.Callee)
}

func buildCG(t *testing.T, src string) *callgraph.Graph {
	t.Helper()
	prog := jimple.MustParse(src)
	prog.Merge(android.Framework())
	if err := prog.Validate(); err != nil {
		t.Fatalf("invalid program: %v", err)
	}
	return callgraph.Build(hierarchy.New(prog), nil)
}

const checkedApp = `class com.a.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    local ok boolean
    cm = new android.net.ConnectivityManager
    specialinvoke cm android.net.ConnectivityManager.<init>()void
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    if ni == null goto L1
    staticinvoke com.a.Net.fetch()void
    L1:
    return
  }
}
class com.a.Net extends java.lang.Object {
  method static fetch()void {
    staticinvoke com.a.Net.send()void
    return
  }
  method static send()void {
    return
  }
}`

func TestMustPrecedeGuardedRequest(t *testing.T) {
	cg := buildCG(t, checkedApp)
	mp := NewMustPrecede(cg, checkGen)
	// Inside onCreate: the fetch call site (stmt 4) is after the check.
	onCreate := "com.a.Main.onCreate(android.os.Bundle)void"
	if !mp.FactBefore(onCreate, 4) {
		t.Error("fetch call site should be preceded by the check")
	}
	if mp.FactBefore(onCreate, 2) {
		t.Error("check must not precede itself")
	}
	// Interprocedural: the body of fetch and send inherit the fact.
	if !mp.FactBefore("com.a.Net.fetch()void", 0) {
		t.Error("callee entry should inherit the established fact")
	}
	if !mp.FactBefore("com.a.Net.send()void", 0) {
		t.Error("transitive callee should inherit the fact")
	}
}

const uncheckedApp = `class com.b.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    staticinvoke com.b.Net.fetch()void
    return
  }
}
class com.b.Net extends java.lang.Object {
  method static fetch()void {
    return
  }
}`

func TestMustPrecedeUnguardedRequest(t *testing.T) {
	cg := buildCG(t, uncheckedApp)
	mp := NewMustPrecede(cg, checkGen)
	if mp.FactBefore("com.b.Main.onCreate(android.os.Bundle)void", 0) {
		t.Error("nothing should precede the first statement of an entry")
	}
	if mp.FactBefore("com.b.Net.fetch()void", 0) {
		t.Error("unguarded callee must not inherit a check")
	}
}

// One caller checks, the other does not: the callee entry fact must be
// the meet (false).
const mixedApp = `class com.c.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    cm = new android.net.ConnectivityManager
    specialinvoke cm android.net.ConnectivityManager.<init>()void
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    staticinvoke com.c.Net.fetch()void
    return
  }
  method onResume()void {
    staticinvoke com.c.Net.fetch()void
    return
  }
}
class com.c.Net extends java.lang.Object {
  method static fetch()void {
    return
  }
}`

func TestMustPrecedeMeetOverCallers(t *testing.T) {
	cg := buildCG(t, mixedApp)
	mp := NewMustPrecede(cg, checkGen)
	if mp.FactBefore("com.c.Net.fetch()void", 0) {
		t.Error("fact must meet to false across a checking and a non-checking caller")
	}
	// But within onCreate the site itself is still guarded.
	if !mp.FactBefore("com.c.Main.onCreate(android.os.Bundle)void", 3) {
		t.Error("the checked call site should retain its local fact")
	}
}

// The check occurs on only one arm of a branch: the join must be false.
const oneArmApp = `class com.d.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local c int
    c = 1
    if c == 0 goto L1
    cm = new android.net.ConnectivityManager
    specialinvoke cm android.net.ConnectivityManager.<init>()void
    virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    L1:
    staticinvoke com.d.Net.fetch()void
    return
  }
}
class com.d.Net extends java.lang.Object {
  method static fetch()void {
    return
  }
}`

func TestMustPrecedeRequiresAllPaths(t *testing.T) {
	cg := buildCG(t, oneArmApp)
	mp := NewMustPrecede(cg, checkGen)
	if mp.FactBefore("com.d.Main.onCreate(android.os.Bundle)void", 5) {
		t.Error("a check on one arm only must not establish the fact at the join")
	}
}

// A helper that always checks: calling it establishes the fact
// (callee-summary propagation).
const helperApp = `class com.e.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local self com.e.Main
    self = this com.e.Main
    virtualinvoke self com.e.Main.ensureOnline()void
    staticinvoke com.e.Net.fetch()void
    return
  }
  method ensureOnline()void {
    local cm android.net.ConnectivityManager
    cm = new android.net.ConnectivityManager
    specialinvoke cm android.net.ConnectivityManager.<init>()void
    virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    return
  }
}
class com.e.Net extends java.lang.Object {
  method static fetch()void {
    return
  }
}`

func TestMustPrecedeCalleeSummary(t *testing.T) {
	cg := buildCG(t, helperApp)
	mp := NewMustPrecede(cg, checkGen)
	if !mp.FactBefore("com.e.Main.onCreate(android.os.Bundle)void", 2) {
		t.Error("a call to an always-checking helper should establish the fact")
	}
	if !mp.FactBefore("com.e.Net.fetch()void", 0) {
		t.Error("fetch should see the fact from its only (guarded) caller")
	}
}

// Path-insensitivity FN reproduction (paper §5.3): a check invoked but not
// used as the branch condition still satisfies the analysis.
const pathInsensitiveApp = `class com.f.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local cm android.net.ConnectivityManager
    local ni android.net.NetworkInfo
    cm = new android.net.ConnectivityManager
    specialinvoke cm android.net.ConnectivityManager.<init>()void
    ni = virtualinvoke cm android.net.ConnectivityManager.getActiveNetworkInfo()android.net.NetworkInfo
    staticinvoke com.f.Net.fetch()void
    return
  }
}
class com.f.Net extends java.lang.Object {
  method static fetch()void {
    return
  }
}`

func TestMustPrecedeIsPathInsensitive(t *testing.T) {
	cg := buildCG(t, pathInsensitiveApp)
	mp := NewMustPrecede(cg, checkGen)
	// The result of the check is never consulted, yet the analysis is
	// satisfied — by design, mirroring NChecker's known false negatives.
	if !mp.FactBefore("com.f.Main.onCreate(android.os.Bundle)void", 3) {
		t.Error("path-insensitive analysis should accept an unused check")
	}
}
