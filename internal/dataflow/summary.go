package dataflow

import (
	"sort"

	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/jimple"
)

// This file implements the summary-based interprocedural taint engine:
// per-method transfer relations over the method's inputs (receiver +
// parameters), computed bottom-up over the call graph's SCC condensation
// with a fixpoint for recursive cycles. Checkers consult a callee's
// summary at the call site instead of stopping at the method boundary —
// the "backward to the allocation, forward over the aliases" tracking of
// paper §4.4.1 and the helper-method response flows of §4.4.4, done once
// per method instead of once per call site (the BackDroid-style targeted
// analysis ROADMAP's scale goal asks for).

// maxSummaryInputs bounds the tracked inputs per method. Input token 0 is
// the receiver, token 1+i is parameter i; tokens at or beyond the bound
// are ignored (a 64-bit mask per fact keeps the transfer relations flat).
const maxSummaryInputs = 64

// summaryFixpointBound caps the iteration count within one recursive SCC.
// All summary facts grow monotonically, so iteration always converges;
// the bound is a safety net against pathological cycles, and hitting it
// only under-reports facts (deterministically).
const summaryFixpointBound = 16

func bit(tok int) uint64 {
	if tok < 0 || tok >= maxSummaryInputs {
		return 0
	}
	return uint64(1) << uint(tok)
}

// SummaryArg is one pre-evaluated call argument carried in a SummaryCall:
// constants are folded in the defining method's own context, because a
// caller cannot run constant propagation inside another method's body.
type SummaryArg struct {
	Known bool
	V     int64
}

// SummaryCall records one call discovered through a summary.
type SummaryCall struct {
	Callee jimple.Sig
	Args   []SummaryArg
}

// TaintSummary is one method's transfer relation over its input tokens
// (0 = receiver, 1+i = parameter i). Masks are input-token bitsets.
type TaintSummary struct {
	// Inputs is the tracked token count (1 + len(params), capped).
	Inputs int

	// RetFrom is the mask of inputs the return value may alias or derive
	// from.
	RetFrom uint64
	// StateFrom[k] is the mask of inputs whose values may be stored into
	// input k's object state (field stores, transitively through callees).
	StateFrom []uint64
	// Escapes is the mask of inputs whose value may escape into a static
	// field or the field of an untracked object.
	Escapes uint64
	// Uses is the mask of inputs that are consulted: a method invoked on
	// them, an instanceof test, or being passed into unsummarized code —
	// here or in any summarized callee.
	Uses uint64
	// ValidatedAllPaths is the mask of inputs validity-checked (a
	// SummaryConfig.IsValidityCheck call or a null test on an alias) on
	// every entry→exit path.
	ValidatedAllPaths uint64
	// UncheckedUse is the mask of inputs whose payload is read (a
	// non-check call on an alias) on some path with no prior validity
	// check.
	UncheckedUse uint64

	// CallsOn[k] lists the calls — here or in summarized callees — whose
	// receiver may alias input k, deduplicated and sorted.
	CallsOn [][]SummaryCall
	// CallsOnRet lists the calls on objects the method allocates and
	// returns (the factory-helper pattern: the caller only ever sees the
	// returned alias).
	CallsOnRet []SummaryCall
}

// UsesToken reports whether input token tok is consulted (see Uses).
func (s *TaintSummary) UsesToken(tok int) bool { return s.Uses&bit(tok) != 0 }

// SummaryConfig parameterizes summary computation.
type SummaryConfig struct {
	// IsValidityCheck classifies a call as a response-validity check for
	// the UncheckedUse/ValidatedAllPaths facts. nil means only null tests
	// count as checks.
	IsValidityCheck func(jimple.Sig) bool
	// CFG, ReachDefs and ConstProp supply per-method artifacts so callers
	// can share a scan-wide cache; nil fields build fresh artifacts.
	CFG       CFGProvider
	ReachDefs func(*jimple.Method) *ReachDefs
	ConstProp func(*jimple.Method) *ConstProp
	// Cancel is polled between method computations; a non-nil return
	// aborts the remaining work and ComputeSummaries returns the error
	// (deadline cooperation for fault-tolerant scans).
	Cancel func() error
	// Seeds supplies already-converged summaries by method key (the
	// persistent scan cache's partial hits). A seeded method is not
	// recomputed: its summary enters the set as-is and its callers build
	// on it. Seeds must be the exact values a cold run would converge to
	// for the same bodies — the cache's content-addressed keys guarantee
	// that. Inside a recursive SCC, seeds are only kept when the whole
	// component is seeded; a partially seeded cycle is recomputed from
	// scratch (a mid-cycle seed is only trustworthy alongside the
	// co-converged values of its cycle peers).
	Seeds map[string]*TaintSummary
	// Roots, when non-nil, restricts the computation to the sub-condensation
	// demanded by the given method keys: only SCCs inside the forward
	// synchronous-call closure of Roots (intersected with the method set)
	// are condensed and summarized. Checkers only ever consult summaries
	// from a root method's call sites, and a callee's converged summary
	// depends only on its own forward closure, so every consulted value is
	// identical to the whole-set computation's. nil means all methods
	// (a non-nil empty slice computes nothing).
	Roots []string
}

func (c *SummaryConfig) cfg(m *jimple.Method) *cfg.Graph {
	if c.CFG != nil {
		return c.CFG(m)
	}
	return cfg.New(m)
}

func (c *SummaryConfig) reachDefs(m *jimple.Method, g *cfg.Graph) *ReachDefs {
	if c.ReachDefs != nil {
		return c.ReachDefs(m)
	}
	return NewReachDefs(g)
}

func (c *SummaryConfig) constProp(m *jimple.Method, rd *ReachDefs) *ConstProp {
	if c.ConstProp != nil {
		return c.ConstProp(m)
	}
	return NewConstProp(rd)
}

// SummaryStats describes one summary computation for diagnostics.
type SummaryStats struct {
	Methods            int // methods summarized
	SCCs               int // strongly connected components processed
	MaxSCC             int // size of the largest (recursive) SCC
	FixpointIterations int // extra passes spent converging recursive SCCs
	Seeded             int // summaries taken from SummaryConfig.Seeds
}

// SummarySet holds the computed summaries of one scan. Lookups are safe
// for concurrent use once ComputeSummaries returns.
type SummarySet struct {
	sums  map[string]*TaintSummary
	stats SummaryStats
}

// Of returns the summary of the method with the given signature key, or
// nil when the method was not in the summarized set.
func (s *SummarySet) Of(key string) *TaintSummary {
	if s == nil {
		return nil
	}
	return s.sums[key]
}

// Stats returns the computation statistics.
func (s *SummarySet) Stats() SummaryStats { return s.stats }

// SummaryResolver maps a call site (statement index in the analyzed
// method) to the summaries of its possible callees. Checkers build one
// per method from the call graph and a SummarySet.
type SummaryResolver func(site int) []*TaintSummary

// ComputeSummaries builds taint summaries for methods, bottom-up over the
// SCC condensation of their mutual (synchronous) call edges in cg, with a
// bounded fixpoint inside each recursive SCC. The result is deterministic:
// methods are processed in sorted-key order and every summary list is
// deduplicated and sorted. On cancellation the partial set built so far is
// returned along with the error.
func ComputeSummaries(cg *callgraph.Graph, methods []*jimple.Method, conf SummaryConfig) (*SummarySet, error) {
	b := &summaryBuilder{
		cg:     cg,
		conf:   conf,
		inSet:  make(map[string]*jimple.Method, len(methods)),
		seeded: make(map[string]bool),
		set:    &SummarySet{sums: make(map[string]*TaintSummary, len(methods))},
	}
	keys := make([]string, 0, len(methods))
	for _, m := range methods {
		k := m.Sig.Key()
		if _, dup := b.inSet[k]; !dup {
			b.inSet[k] = m
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if conf.Roots != nil {
		keys = b.demandedClosure(keys, conf.Roots)
	}
	for _, k := range keys {
		if sum := conf.Seeds[k]; sum != nil {
			b.set.sums[k] = sum
			b.seeded[k] = true
			b.set.stats.Seeded++
		}
	}
	sccs := b.condense(keys)
	b.set.stats.SCCs = len(sccs)
	for _, scc := range sccs {
		if len(scc) > b.set.stats.MaxSCC {
			b.set.stats.MaxSCC = len(scc)
		}
		if err := b.computeSCC(scc); err != nil {
			return b.set, err
		}
	}
	b.set.stats.Methods = len(b.set.sums)
	return b.set, nil
}

type summaryBuilder struct {
	cg     *callgraph.Graph
	conf   SummaryConfig
	inSet  map[string]*jimple.Method
	seeded map[string]bool // keys whose summary came from conf.Seeds
	set    *SummarySet
}

// demandedClosure filters the sorted key list down to the forward EdgeCall
// closure of the roots within the in-set, preserving the sorted order.
func (b *summaryBuilder) demandedClosure(keys, roots []string) []string {
	want := make(map[string]bool, len(roots))
	var stack []string
	for _, r := range roots {
		if _, ok := b.inSet[r]; ok && !want[r] {
			want[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.cg.OutEdges(k) {
			ck := e.CalleeKey()
			if e.Kind != callgraph.EdgeCall || want[ck] {
				continue
			}
			if _, ok := b.inSet[ck]; !ok {
				continue
			}
			want[ck] = true
			stack = append(stack, ck)
		}
	}
	out := keys[:0]
	for _, k := range keys {
		if want[k] {
			out = append(out, k)
		}
	}
	return out
}

// condense runs Tarjan's algorithm over the in-set call edges and returns
// the SCCs in reverse topological order (callees before callers), each
// SCC's members sorted by key. Iteration order over keys and edges is
// deterministic, so the condensation is too.
func (b *summaryBuilder) condense(keys []string) [][]string {
	adj := make(map[string][]string, len(keys))
	for _, k := range keys {
		var succs []string
		seen := make(map[string]bool)
		for _, e := range b.cg.OutEdges(k) {
			ck := e.CalleeKey()
			if e.Kind != callgraph.EdgeCall || seen[ck] {
				continue
			}
			if _, ok := b.inSet[ck]; !ok {
				continue
			}
			seen[ck] = true
			succs = append(succs, ck)
		}
		adj[k] = succs
	}
	index := make(map[string]int, len(keys))
	low := make(map[string]int, len(keys))
	onStack := make(map[string]bool, len(keys))
	var stack []string
	var sccs [][]string
	next := 0
	type frame struct {
		key string
		ei  int
	}
	for _, root := range keys {
		if _, visited := index[root]; visited {
			continue
		}
		call := []frame{{key: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(adj[f.key]) {
				w := adj[f.key][f.ei]
				f.ei++
				if _, visited := index[w]; !visited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{key: w})
				} else if onStack[w] && index[w] < low[f.key] {
					low[f.key] = index[w]
				}
				continue
			}
			// f.key finished: pop, propagate lowlink, emit SCC at root.
			k := f.key
			call = call[:len(call)-1]
			if len(call) > 0 && low[k] < low[call[len(call)-1].key] {
				low[call[len(call)-1].key] = low[k]
			}
			if low[k] == index[k] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == k {
						break
					}
				}
				sort.Strings(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// computeSCC summarizes one SCC's methods. A non-recursive singleton needs
// one pass; a recursive component iterates to a fixpoint (facts only grow,
// so comparing summaries detects convergence). Seeded members are not
// recomputed — except inside a partially seeded recursive component,
// where the seeds are dropped and the whole cycle converges fresh (see
// SummaryConfig.Seeds).
func (b *summaryBuilder) computeSCC(scc []string) error {
	seededHere := 0
	for _, k := range scc {
		if b.seeded[k] {
			seededHere++
		}
	}
	if seededHere == len(scc) {
		return nil
	}
	recursive := len(scc) > 1
	if !recursive {
		for _, e := range b.cg.OutEdges(scc[0]) {
			if e.Kind == callgraph.EdgeCall && e.CalleeKey() == scc[0] {
				recursive = true
				break
			}
		}
	}
	if recursive && seededHere > 0 {
		for _, k := range scc {
			if b.seeded[k] {
				delete(b.set.sums, k)
				delete(b.seeded, k)
				b.set.stats.Seeded--
			}
		}
	}
	for iter := 0; ; iter++ {
		changed := false
		for _, k := range scc {
			if b.seeded[k] {
				continue
			}
			if b.conf.Cancel != nil {
				if err := b.conf.Cancel(); err != nil {
					return err
				}
			}
			sum := b.computeMethod(b.inSet[k])
			if prev := b.set.sums[k]; prev == nil || !equalSummary(prev, sum) {
				changed = true
			}
			b.set.sums[k] = sum
		}
		if !recursive || !changed || iter+1 >= summaryFixpointBound {
			return nil
		}
		b.set.stats.FixpointIterations++
	}
}

// calleeAt resolves the summarized callees of each call site of the
// method with key k, in deterministic (sorted) edge order. A callee in
// the summarized set whose summary is not yet computed (same SCC, first
// iteration) contributes a nil entry: callers treat it as an empty
// summary, which the fixpoint then grows.
func (b *summaryBuilder) calleeAt(k string) map[int][]*TaintSummary {
	out := make(map[int][]*TaintSummary)
	for _, e := range b.cg.OutEdges(k) {
		if e.Kind != callgraph.EdgeCall {
			continue
		}
		ck := e.CalleeKey()
		if _, ok := b.inSet[ck]; !ok {
			continue
		}
		out[e.Site] = append(out[e.Site], b.set.sums[ck])
	}
	return out
}

// boundTokens returns the callee tokens of sum that are bound, at the
// invocation inv, to a local satisfying isAlias (token 0 → receiver,
// token 1+j → argument j), in ascending order.
func BoundTokens(inv jimple.InvokeExpr, sum *TaintSummary, isAlias func(string) bool) []int {
	var toks []int
	if sum == nil {
		return nil
	}
	if inv.Base != "" && sum.Inputs > 0 && isAlias(inv.Base) {
		toks = append(toks, 0)
	}
	for j, arg := range inv.Args {
		if 1+j >= sum.Inputs {
			break
		}
		if l, ok := arg.(jimple.Local); ok && isAlias(l.Name) {
			toks = append(toks, 1+j)
		}
	}
	return toks
}

// tokenLocal returns the caller local bound to callee token tok at inv,
// or "" when the token has no local binding (non-local argument).
func tokenLocal(inv jimple.InvokeExpr, tok int) string {
	if tok == 0 {
		return inv.Base
	}
	if tok-1 < len(inv.Args) {
		if l, ok := inv.Args[tok-1].(jimple.Local); ok {
			return l.Name
		}
	}
	return ""
}

// computeMethod builds one method's summary against the callee summaries
// currently in the set.
func (b *summaryBuilder) computeMethod(m *jimple.Method) *TaintSummary {
	g := b.conf.cfg(m)
	callees := b.calleeAt(m.Sig.Key())
	inputs := 1 + len(m.Sig.Params)
	if inputs > maxSummaryInputs {
		inputs = maxSummaryInputs
	}
	sum := &TaintSummary{
		Inputs:    inputs,
		StateFrom: make([]uint64, inputs),
		CallsOn:   make([][]SummaryCall, inputs),
	}
	in := b.aliasFixpoint(m, g, callees)
	b.collectFacts(m, g, callees, in, sum)
	b.checkFacts(m, g, callees, in, sum)
	for k := range sum.CallsOn {
		sum.CallsOn[k] = dedupeCalls(sum.CallsOn[k])
	}
	sum.CallsOnRet = dedupeCalls(sum.CallsOnRet)
	return sum
}

// aliasFixpoint computes, per node, the map local → input mask holding
// immediately before the node executes: which inputs each local may alias
// or derive from. The transfer mirrors ForwardTaint's object-taint rules
// (receiver derivation, field-store insensitivity, strong updates on
// overwrite) lifted to per-input masks, and additionally flows through
// summarized callees (return derivation and state effects).
func (b *summaryBuilder) aliasFixpoint(m *jimple.Method, g *cfg.Graph, callees map[int][]*TaintSummary) []map[string]uint64 {
	n := g.NumNodes()
	// Maps stay nil until a fact arrives: reads from nil maps are free, so
	// nodes no masks flow through never allocate (most nodes of most
	// methods). Consumers index in[i][name] and tolerate nil the same way.
	in := make([]map[string]uint64, n)
	out := make([]map[string]uint64, n)
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	push := func(i int) {
		if !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	for i := 0; i < n; i++ {
		push(i)
	}
	for head := 0; head < len(work); head++ {
		u := work[head]
		inWork[u] = false
		var nu map[string]uint64
		for _, p := range g.Preds(u) {
			for l, mask := range out[p] {
				if nu == nil {
					nu = make(map[string]uint64, 8)
				}
				nu[l] |= mask
			}
		}
		in[u] = nu
		var no map[string]uint64
		if len(nu) > 0 {
			no = make(map[string]uint64, len(nu))
			for l, mask := range nu {
				no[l] = mask
			}
		}
		if u < len(m.Body) {
			no = b.aliasTransfer(m.Body[u], u, no, callees)
		}
		if !sameMasks(out[u], no) {
			out[u] = no
			for _, s := range g.Succs(u) {
				push(s)
			}
		}
	}
	return in
}

// aliasTransfer applies one statement's transfer to cur and returns it,
// allocating the map only when the first fact is introduced (cur may come
// in nil and leave nil). Every other write is guarded by a non-zero mask,
// which can only derive from an already-populated map.
func (b *summaryBuilder) aliasTransfer(s jimple.Stmt, at int, cur map[string]uint64, callees map[int][]*TaintSummary) map[string]uint64 {
	if inv, ok := jimple.InvokeOf(s); ok {
		applyStateEffects(inv, callees[at], cur)
	}
	a, ok := s.(*jimple.AssignStmt)
	if !ok {
		return cur
	}
	if f, isField := a.LHS.(jimple.FieldRef); isField {
		if f.Base != "" {
			// Object-level field insensitivity: storing a derived value
			// into x makes x's object state derive the same inputs.
			if vm := maskOfValue(a.RHS, at, cur, callees); vm != 0 {
				cur[f.Base] |= vm
			}
		}
		return cur
	}
	dst := a.LHS.(jimple.Local).Name
	var mask uint64
	switch rhs := a.RHS.(type) {
	case jimple.ThisRef:
		mask = bit(0)
	case jimple.ParamRef:
		mask = bit(1 + rhs.Index)
	default:
		mask = maskOfValue(a.RHS, at, cur, callees)
	}
	if mask != 0 {
		if cur == nil {
			cur = make(map[string]uint64, 4)
		}
		cur[dst] = mask
	} else {
		delete(cur, dst) // strong update: overwritten with a fresh value
	}
	return cur
}

// applyStateEffects propagates callee StateFrom relations to the caller's
// bound locals: if the callee stores input t_in into input t_out's state,
// the caller local bound to t_out now derives everything the local bound
// to t_in derives.
func applyStateEffects(inv jimple.InvokeExpr, sums []*TaintSummary, cur map[string]uint64) {
	for _, sum := range sums {
		if sum == nil {
			continue
		}
		for tOut := 0; tOut < sum.Inputs; tOut++ {
			effects := sum.StateFrom[tOut]
			if effects == 0 {
				continue
			}
			outLocal := tokenLocal(inv, tOut)
			if outLocal == "" {
				continue
			}
			var inMask uint64
			for tIn := 0; tIn < sum.Inputs; tIn++ {
				if effects&bit(tIn) != 0 {
					if l := tokenLocal(inv, tIn); l != "" {
						inMask |= cur[l]
					}
				}
			}
			if inMask != 0 {
				cur[outLocal] |= inMask
			}
		}
	}
}

func maskOfValue(v jimple.Value, at int, cur map[string]uint64, callees map[int][]*TaintSummary) uint64 {
	switch v := v.(type) {
	case jimple.Local:
		return cur[v.Name]
	case jimple.CastExpr:
		return maskOfValue(v.V, at, cur, callees)
	case jimple.FieldRef:
		// A load from a derived object yields a derived value (field
		// insensitivity); static loads are fresh.
		if v.Base != "" {
			return cur[v.Base]
		}
		return 0
	case jimple.InvokeExpr:
		if sums := callees[at]; len(sums) > 0 {
			// Summarized callees: the result derives exactly what the
			// callee's RetFrom maps the bindings to.
			var mask uint64
			for _, sum := range sums {
				if sum == nil {
					continue
				}
				for t := 0; t < sum.Inputs; t++ {
					if sum.RetFrom&bit(t) != 0 {
						if l := tokenLocal(v, t); l != "" {
							mask |= cur[l]
						}
					}
				}
			}
			return mask
		}
		// Unsummarized (framework) callee: receiver derivation, matching
		// DefaultTaintOptions.TaintThroughReceiver.
		if v.Base != "" {
			return cur[v.Base]
		}
		return 0
	default:
		return 0
	}
}

func sameMasks(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// collectFacts walks the body once with the converged in-states and
// records the summary's may-facts: calls on inputs, uses, escapes, state
// transfer, return derivation, and the factory CallsOnRet list.
func (b *summaryBuilder) collectFacts(m *jimple.Method, g *cfg.Graph, callees map[int][]*TaintSummary, in []map[string]uint64, sum *TaintSummary) {
	var rd *ReachDefs
	var cp *ConstProp
	lazyCP := func() *ConstProp {
		if cp == nil {
			rd = b.conf.reachDefs(m, g)
			cp = b.conf.constProp(m, rd)
		}
		return cp
	}
	addCallsOn := func(mask uint64, sc SummaryCall) {
		for k := 0; k < sum.Inputs; k++ {
			if mask&bit(k) != 0 {
				sum.CallsOn[k] = append(sum.CallsOn[k], sc)
			}
		}
	}
	var freshReturns []int
	for i, s := range m.Body {
		cur := in[i]
		if a, isAsg := s.(*jimple.AssignStmt); isAsg {
			if f, isField := a.LHS.(jimple.FieldRef); isField {
				vm := maskOfValue(a.RHS, i, cur, callees)
				if vm != 0 {
					if f.Base == "" || cur[f.Base] == 0 {
						sum.Escapes |= vm
					} else {
						for k := 0; k < sum.Inputs; k++ {
							if cur[f.Base]&bit(k) != 0 {
								sum.StateFrom[k] |= vm
							}
						}
					}
				}
			}
			if io, isIO := a.RHS.(jimple.InstanceOfExpr); isIO {
				if l, isLocal := io.V.(jimple.Local); isLocal {
					sum.Uses |= cur[l.Name]
				}
			}
		}
		if r, isRet := s.(*jimple.ReturnStmt); isRet && r.V != nil {
			vm := maskOfValue(r.V, i, cur, callees)
			sum.RetFrom |= vm
			if vm == 0 {
				if _, isLocal := r.V.(jimple.Local); isLocal {
					freshReturns = append(freshReturns, i)
				}
			}
		}
		inv, isInv := jimple.InvokeOf(s)
		if !isInv {
			continue
		}
		sums := callees[i]
		if inv.Base != "" && cur[inv.Base] != 0 {
			// A call on an alias of an input: record it (with constant
			// arguments folded here, where they are evaluable) and mark
			// the inputs used.
			sum.Uses |= cur[inv.Base]
			addCallsOn(cur[inv.Base], SummaryCall{Callee: inv.Callee, Args: evalArgs(lazyCP(), i, inv)})
		}
		if len(sums) == 0 {
			// Passing an input into unsummarized code counts as a use
			// (unknown code may consult it).
			for _, arg := range inv.Args {
				if l, ok := arg.(jimple.Local); ok {
					sum.Uses |= cur[l.Name]
				}
			}
			continue
		}
		// Map the summarized callees' facts through the binding.
		for _, cs := range sums {
			if cs == nil {
				continue
			}
			for t := 0; t < cs.Inputs; t++ {
				l := tokenLocal(inv, t)
				if l == "" || cur[l] == 0 {
					continue
				}
				mask := cur[l]
				if cs.UsesToken(t) {
					sum.Uses |= mask
				}
				if cs.Escapes&bit(t) != 0 {
					sum.Escapes |= mask
				}
				for _, sc := range cs.CallsOn[t] {
					addCallsOn(mask, sc)
				}
				// Transitive state transfer: callee stores t into t_out.
				for tOut := 0; tOut < cs.Inputs; tOut++ {
					if cs.StateFrom[tOut]&bit(t) == 0 {
						continue
					}
					if lOut := tokenLocal(inv, tOut); lOut != "" {
						for k := 0; k < sum.Inputs; k++ {
							if cur[lOut]&bit(k) != 0 {
								sum.StateFrom[k] |= mask
							}
						}
					}
				}
			}
		}
	}
	// Factory pattern: calls on objects the method allocates and returns.
	for _, ret := range freshReturns {
		l := m.Body[ret].(*jimple.ReturnStmt).V.(jimple.Local)
		lazyCP()
		for _, oc := range CallsOnObject(g, rd, ret, l.Name) {
			sum.CallsOnRet = append(sum.CallsOnRet, SummaryCall{Callee: oc.Callee, Args: evalArgs(cp, oc.Stmt, mustInvoke(m, oc.Stmt))})
		}
		// Chained factories: the returned object may itself come from a
		// summarized factory (its CallsOnRet) or be a callee's
		// passed-through input (its CallsOn via RetFrom).
		for _, alloc := range AllocSitesOf(rd, ret, l.Name) {
			for _, cs := range callees[alloc] {
				if cs == nil {
					continue
				}
				sum.CallsOnRet = append(sum.CallsOnRet, cs.CallsOnRet...)
				if inv, ok := jimple.InvokeOf(m.Body[alloc]); ok {
					for t := 0; t < cs.Inputs; t++ {
						if cs.RetFrom&bit(t) != 0 && tokenLocal(inv, t) != "" {
							sum.CallsOnRet = append(sum.CallsOnRet, cs.CallsOn[t]...)
						}
					}
				}
			}
		}
	}
}

func mustInvoke(m *jimple.Method, stmt int) jimple.InvokeExpr {
	inv, _ := jimple.InvokeOf(m.Body[stmt])
	return inv
}

// checkFacts computes the must-check facts per input: ValidatedAllPaths
// (every entry→exit path validates the input) and UncheckedUse (some path
// reads the payload before any validation) — the summary form of checker
// 4's response-validity analysis.
func (b *summaryBuilder) checkFacts(m *jimple.Method, g *cfg.Graph, callees map[int][]*TaintSummary, in []map[string]uint64, sum *TaintSummary) {
	var present uint64
	for i := range in {
		for _, mask := range in[i] {
			present |= mask
		}
	}
	for k := 0; k < sum.Inputs; k++ {
		if present&bit(k) == 0 {
			continue
		}
		isAlias := func(stmt int, name string) bool {
			return stmt < len(in) && in[stmt][name]&bit(k) != 0
		}
		checked := mustCheckedIn(g, m, isAlias, callees, b.conf.IsValidityCheck)
		if checked[g.Exit()] {
			sum.ValidatedAllPaths |= bit(k)
		}
		for i := range m.Body {
			if payloadReadAt(m, i, isAlias, callees, b.conf.IsValidityCheck) && !checked[i] {
				sum.UncheckedUse |= bit(k)
				break
			}
		}
	}
}

// mustCheckedIn is a forward must-analysis: fact[i] is true when every
// path reaching node i has validated the tracked alias — via a validity
// check call, a null test, or a summarized callee that validates the
// bound token on all its paths. Optimistic initialization (start at TOP),
// entry starts unchecked.
func mustCheckedIn(g *cfg.Graph, m *jimple.Method, isAlias func(int, string) bool, callees map[int][]*TaintSummary, isCheck func(jimple.Sig) bool) []bool {
	n := g.NumNodes()
	in := make([]bool, n)
	out := make([]bool, n)
	for i := range in {
		in[i] = true
		out[i] = true
	}
	gen := func(i int) bool {
		if i >= len(m.Body) {
			return false
		}
		s := m.Body[i]
		if iff, ok := s.(*jimple.IfStmt); ok {
			return isNullTestOnValue(iff.Cond, i, isAlias)
		}
		inv, ok := jimple.InvokeOf(s)
		if !ok {
			return false
		}
		if isCheck != nil && inv.Base != "" && isAlias(i, inv.Base) && isCheck(inv.Callee) {
			return true
		}
		// A call whose every summarized callee validates a bound alias
		// token on all its paths establishes the check here too.
		sums := callees[i]
		if len(sums) == 0 {
			return false
		}
		for _, cs := range sums {
			validated := false
			for _, t := range BoundTokens(inv, cs, func(name string) bool { return isAlias(i, name) }) {
				if cs.ValidatedAllPaths&bit(t) != 0 {
					validated = true
					break
				}
			}
			if !validated {
				return false
			}
		}
		return true
	}
	for changed := true; changed; {
		changed = false
		for u := 0; u < n; u++ {
			newIn := u != 0
			for _, p := range g.Preds(u) {
				newIn = newIn && out[p]
			}
			if u == 0 {
				newIn = false
			}
			newOut := newIn || gen(u)
			if newIn != in[u] || newOut != out[u] {
				in[u], out[u] = newIn, newOut
				changed = true
			}
		}
	}
	return in
}

// payloadReadAt reports whether statement i reads the tracked alias's
// payload: a non-check call on it, or passing it to a summarized callee
// that itself has an unchecked use of the bound token.
func payloadReadAt(m *jimple.Method, i int, isAlias func(int, string) bool, callees map[int][]*TaintSummary, isCheck func(jimple.Sig) bool) bool {
	inv, ok := jimple.InvokeOf(m.Body[i])
	if !ok {
		return false
	}
	sums := callees[i]
	if inv.Base != "" && isAlias(i, inv.Base) {
		if isCheck != nil && isCheck(inv.Callee) {
			return false
		}
		if len(sums) == 0 {
			return true // framework call on the alias reads the payload
		}
	}
	for _, cs := range sums {
		if cs == nil {
			continue
		}
		for _, t := range BoundTokens(inv, cs, func(name string) bool { return isAlias(i, name) }) {
			if cs.UncheckedUse&bit(t) != 0 {
				return true
			}
		}
	}
	return false
}

// isNullTestOnValue matches `x == null` / `x != null` conditions on an
// alias (shared shape with checker 4's null-test detection).
func isNullTestOnValue(cond jimple.Value, stmt int, isAlias func(int, string) bool) bool {
	be, ok := cond.(jimple.BinExpr)
	if !ok || (be.Op != jimple.OpEQ && be.Op != jimple.OpNE) {
		return false
	}
	lLocal, lIsLocal := be.L.(jimple.Local)
	rLocal, rIsLocal := be.R.(jimple.Local)
	_, lIsNull := be.L.(jimple.NullConst)
	_, rIsNull := be.R.(jimple.NullConst)
	if lIsLocal && rIsNull {
		return isAlias(stmt, lLocal.Name)
	}
	if rIsLocal && lIsNull {
		return isAlias(stmt, rLocal.Name)
	}
	return false
}

// evalArgs folds the invocation's arguments to constants in the defining
// method's context.
func evalArgs(cp *ConstProp, stmt int, inv jimple.InvokeExpr) []SummaryArg {
	if len(inv.Args) == 0 {
		return nil
	}
	out := make([]SummaryArg, len(inv.Args))
	for j := range inv.Args {
		v, ok := cp.ArgInt(stmt, inv, j)
		out[j] = SummaryArg{Known: ok, V: v}
	}
	return out
}

// dedupeCalls sorts and deduplicates a summary call list (callee key,
// then argument values) for deterministic summaries. Callee keys are
// rendered once up front, not once per comparison.
func dedupeCalls(calls []SummaryCall) []SummaryCall {
	if len(calls) == 0 {
		return nil
	}
	keys := make([]string, len(calls))
	for i := range calls {
		keys[i] = calls[i].Callee.Key()
	}
	sort.Stable(&callSorter{calls: calls, keys: keys})
	out := calls[:1]
	last := 0
	for i := 1; i < len(calls); i++ {
		if keys[last] != keys[i] || !sameArgs(out[len(out)-1].Args, calls[i].Args) {
			out = append(out, calls[i])
			last = i
		}
	}
	return out
}

// callSorter orders SummaryCalls by pre-rendered callee key, then
// argument vector, swapping the key slice in lockstep.
type callSorter struct {
	calls []SummaryCall
	keys  []string
}

func (s *callSorter) Len() int { return len(s.calls) }

func (s *callSorter) Swap(i, j int) {
	s.calls[i], s.calls[j] = s.calls[j], s.calls[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func (s *callSorter) Less(i, j int) bool {
	if s.keys[i] != s.keys[j] {
		return s.keys[i] < s.keys[j]
	}
	a, b := &s.calls[i], &s.calls[j]
	if len(a.Args) != len(b.Args) {
		return len(a.Args) < len(b.Args)
	}
	for k := range a.Args {
		if a.Args[k] != b.Args[k] {
			if a.Args[k].Known != b.Args[k].Known {
				return !a.Args[k].Known
			}
			return a.Args[k].V < b.Args[k].V
		}
	}
	return false
}

func sameArgs(a, b []SummaryArg) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalCall(a, b *SummaryCall) bool {
	if a.Callee.Key() != b.Callee.Key() || len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

func equalSummary(a, b *TaintSummary) bool {
	if a.Inputs != b.Inputs || a.RetFrom != b.RetFrom || a.Escapes != b.Escapes ||
		a.Uses != b.Uses || a.ValidatedAllPaths != b.ValidatedAllPaths ||
		a.UncheckedUse != b.UncheckedUse {
		return false
	}
	for k := range a.StateFrom {
		if a.StateFrom[k] != b.StateFrom[k] {
			return false
		}
	}
	if len(a.CallsOnRet) != len(b.CallsOnRet) {
		return false
	}
	for i := range a.CallsOnRet {
		if !equalCall(&a.CallsOnRet[i], &b.CallsOnRet[i]) {
			return false
		}
	}
	for k := range a.CallsOn {
		if len(a.CallsOn[k]) != len(b.CallsOn[k]) {
			return false
		}
		for i := range a.CallsOn[k] {
			if !equalCall(&a.CallsOn[k][i], &b.CallsOn[k][i]) {
				return false
			}
		}
	}
	return true
}
