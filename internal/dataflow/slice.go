package dataflow

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/jimple"
)

// Slicer computes intraprocedural backward slices over data and control
// dependence, the primitive NChecker's retry-loop identification uses to
// connect loop-exit conditions to catch-block statements (paper §4.5:
// "Backward slicing is used to obtain the control dependency
// information").
type Slicer struct {
	g    *cfg.Graph
	rd   *ReachDefs
	cd   map[int]map[int]bool
	body []jimple.Stmt
}

// NewSlicer prepares a slicer for g, reusing a ReachDefs result.
func NewSlicer(g *cfg.Graph, rd *ReachDefs) *Slicer {
	return &Slicer{g: g, rd: rd, cd: g.ControlDeps(), body: g.Method.Body}
}

// BackwardSlice returns the set of statement indexes the seed statements
// transitively depend on (through data and control dependence), including
// the seeds themselves.
func (s *Slicer) BackwardSlice(seeds ...int) map[int]bool {
	inSlice := make(map[int]bool)
	work := append([]int(nil), seeds...)
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		if inSlice[u] || u < 0 || u >= len(s.body) {
			continue
		}
		inSlice[u] = true
		// Data dependence: definitions of every local u reads.
		var uses []string
		uses = jimple.UsesOf(uses, s.body[u])
		for _, l := range uses {
			for _, d := range s.rd.DefsReaching(u, l) {
				if !inSlice[d] {
					work = append(work, d)
				}
			}
		}
		// Control dependence: the branches governing u.
		for b := range s.cd[u] {
			if !inSlice[b] {
				work = append(work, b)
			}
		}
	}
	return inSlice
}

// SortedSlice is BackwardSlice flattened to a sorted slice.
func (s *Slicer) SortedSlice(seeds ...int) []int {
	m := s.BackwardSlice(seeds...)
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// DependsOnAny reports whether the backward slice of seed intersects the
// given statement set.
func (s *Slicer) DependsOnAny(seed int, stmts map[int]bool) bool {
	slice := s.BackwardSlice(seed)
	for i := range slice {
		if i != seed && stmts[i] {
			return true
		}
	}
	return false
}
