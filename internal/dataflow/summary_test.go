package dataflow

import (
	"reflect"
	"testing"

	"repro/internal/android"
	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/hierarchy"
	"repro/internal/jimple"
)

// summariesOf parses src, builds the call graph, and summarizes every
// body-bearing method.
func summariesOf(t *testing.T, src string) (*SummarySet, *callgraph.Graph, []*jimple.Method) {
	t.Helper()
	prog := jimple.MustParse(src)
	if err := prog.Validate(); err != nil {
		t.Fatalf("test program invalid: %v", err)
	}
	h := hierarchy.New(prog)
	man := &android.Manifest{Package: "t"}
	man.Normalize()
	cg := callgraph.Build(h, man)
	var methods []*jimple.Method
	for _, c := range prog.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				methods = append(methods, m)
			}
		}
	}
	set, err := ComputeSummaries(cg, methods, SummaryConfig{})
	if err != nil {
		t.Fatalf("ComputeSummaries: %v", err)
	}
	return set, cg, methods
}

func TestSummaryRetFromAndCallsOn(t *testing.T) {
	set, _, _ := summariesOf(t, `class t.H extends java.lang.Object {
  method static configure(t.Client)t.Client {
    local cl t.Client
    cl = param 0 t.Client
    virtualinvoke cl t.Client.setTimeout(int)void 5000
    return cl
  }
}
class t.Client extends java.lang.Object {
  method setTimeout(int)void {
    return
  }
}`)
	sum := set.Of("t.H.configure(t.Client)t.Client")
	if sum == nil {
		t.Fatal("no summary for configure")
	}
	if sum.Inputs != 2 {
		t.Fatalf("Inputs: %d", sum.Inputs)
	}
	// The return value is the parameter, passed through.
	if sum.RetFrom != 1<<1 {
		t.Errorf("RetFrom: %b", sum.RetFrom)
	}
	// setTimeout is invoked on the parameter, with its constant argument
	// folded in the helper's own context.
	if len(sum.CallsOn[1]) != 1 {
		t.Fatalf("CallsOn[1]: %+v", sum.CallsOn[1])
	}
	sc := sum.CallsOn[1][0]
	if sc.Callee.Name != "setTimeout" {
		t.Errorf("callee: %v", sc.Callee)
	}
	if len(sc.Args) != 1 || !sc.Args[0].Known || sc.Args[0].V != 5000 {
		t.Errorf("args: %+v", sc.Args)
	}
	if !sum.UsesToken(1) {
		t.Error("parameter should be marked used (invoked on)")
	}
	if sum.UsesToken(0) {
		t.Error("static method: receiver token unused")
	}
}

func TestSummaryFactoryCallsOnRet(t *testing.T) {
	set, _, _ := summariesOf(t, `class t.F extends java.lang.Object {
  method static make()t.Client {
    local cl t.Client
    cl = new t.Client
    specialinvoke cl t.Client.<init>()void
    virtualinvoke cl t.Client.setTimeout(int)void 3000
    return cl
  }
  method static makeIndirect()t.Client {
    local cl t.Client
    cl = staticinvoke t.F.make()t.Client
    return cl
  }
}
class t.Client extends java.lang.Object {
  method <init>()void {
    return
  }
  method setTimeout(int)void {
    return
  }
}`)
	sum := set.Of("t.F.make()t.Client")
	if sum == nil {
		t.Fatal("no summary for make")
	}
	if sum.RetFrom != 0 {
		t.Errorf("fresh allocation should not derive inputs: %b", sum.RetFrom)
	}
	names := func(calls []SummaryCall) []string {
		var out []string
		for _, c := range calls {
			out = append(out, c.Callee.Name)
		}
		return out
	}
	if got := names(sum.CallsOnRet); !reflect.DeepEqual(got, []string{"<init>", "setTimeout"}) {
		t.Errorf("CallsOnRet: %v", got)
	}
	// The chained factory inherits the producer's CallsOnRet.
	ind := set.Of("t.F.makeIndirect()t.Client")
	if ind == nil {
		t.Fatal("no summary for makeIndirect")
	}
	if got := names(ind.CallsOnRet); !reflect.DeepEqual(got, []string{"<init>", "setTimeout"}) {
		t.Errorf("chained CallsOnRet: %v", got)
	}
}

func TestSummaryStateFromAndEscape(t *testing.T) {
	set, _, _ := summariesOf(t, `class t.S extends java.lang.Object {
  field sink t.Obj
  method static stash(t.Holder,t.Obj)void {
    local h t.Holder
    local v t.Obj
    h = param 0 t.Holder
    v = param 1 t.Obj
    field(h,t.Holder,slot) = v
    return
  }
  method static leak(t.Obj)void {
    local v t.Obj
    v = param 0 t.Obj
    field(,t.S,sink) = v
    return
  }
}
class t.Holder extends java.lang.Object {
}
class t.Obj extends java.lang.Object {
}`)
	stash := set.Of("t.S.stash(t.Holder,t.Obj)void")
	if stash == nil {
		t.Fatal("no summary for stash")
	}
	// Param 1 (token 2) is stored into param 0's (token 1's) state.
	if stash.StateFrom[1] != 1<<2 {
		t.Errorf("StateFrom[1]: %b", stash.StateFrom[1])
	}
	if stash.Escapes != 0 {
		t.Errorf("stash should not escape: %b", stash.Escapes)
	}
	leak := set.Of("t.S.leak(t.Obj)void")
	if leak == nil {
		t.Fatal("no summary for leak")
	}
	if leak.Escapes != 1<<1 {
		t.Errorf("static-field store should escape param 0: %b", leak.Escapes)
	}
}

func TestSummaryUncheckedUseAndValidated(t *testing.T) {
	isCheck := func(sig jimple.Sig) bool { return sig.Name == "isSuccess" }
	src := `class t.U extends java.lang.Object {
  method static useRaw(t.Resp)void {
    local r t.Resp
    local b java.lang.String
    r = param 0 t.Resp
    b = virtualinvoke r t.Resp.getBody()java.lang.String
    return
  }
  method static useChecked(t.Resp)void {
    local r t.Resp
    local ok boolean
    local b java.lang.String
    r = param 0 t.Resp
    ok = virtualinvoke r t.Resp.isSuccess()boolean
    if ok == 0 goto L1
    b = virtualinvoke r t.Resp.getBody()java.lang.String
    L1:
    return
  }
}`
	prog := jimple.MustParse(src)
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
	h := hierarchy.New(prog)
	man := &android.Manifest{Package: "t"}
	man.Normalize()
	cg := callgraph.Build(h, man)
	var methods []*jimple.Method
	for _, c := range prog.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				methods = append(methods, m)
			}
		}
	}
	set, err := ComputeSummaries(cg, methods, SummaryConfig{IsValidityCheck: isCheck})
	if err != nil {
		t.Fatal(err)
	}
	raw := set.Of("t.U.useRaw(t.Resp)void")
	if raw == nil || raw.UncheckedUse&(1<<1) == 0 {
		t.Errorf("useRaw should have an unchecked use of its parameter: %+v", raw)
	}
	checked := set.Of("t.U.useChecked(t.Resp)void")
	if checked == nil {
		t.Fatal("no summary for useChecked")
	}
	if checked.UncheckedUse&(1<<1) != 0 {
		t.Error("useChecked reads only after the check")
	}
	if checked.ValidatedAllPaths&(1<<1) == 0 {
		t.Error("useChecked validates on every path")
	}
}

func TestSummaryRecursionConverges(t *testing.T) {
	set, _, _ := summariesOf(t, `class t.R extends java.lang.Object {
  method static ping(t.Obj,int)t.Obj {
    local v t.Obj
    local n int
    local out t.Obj
    v = param 0 t.Obj
    n = param 1 int
    if n == 0 goto L1
    out = staticinvoke t.R.pong(t.Obj,int)t.Obj v n
    return out
    L1:
    return v
  }
  method static pong(t.Obj,int)t.Obj {
    local v t.Obj
    local n int
    local out t.Obj
    v = param 0 t.Obj
    n = param 1 int
    out = staticinvoke t.R.ping(t.Obj,int)t.Obj v n
    return out
  }
}
class t.Obj extends java.lang.Object {
}`)
	stats := set.Stats()
	if stats.MaxSCC != 2 {
		t.Errorf("ping/pong should form one SCC of 2: %+v", stats)
	}
	for _, key := range []string{"t.R.ping(t.Obj,int)t.Obj", "t.R.pong(t.Obj,int)t.Obj"} {
		sum := set.Of(key)
		if sum == nil {
			t.Fatalf("no summary for %s", key)
		}
		// The object parameter flows to the return through the cycle.
		if sum.RetFrom&(1<<1) == 0 {
			t.Errorf("%s: RetFrom should include param 0 through recursion: %b", key, sum.RetFrom)
		}
	}
	if stats.FixpointIterations == 0 {
		t.Error("a recursive SCC should need at least one extra fixpoint pass")
	}
}

func TestSummariesDeterministic(t *testing.T) {
	src := `class t.D extends java.lang.Object {
  method static a(t.Obj)t.Obj {
    local v t.Obj
    local out t.Obj
    v = param 0 t.Obj
    out = staticinvoke t.D.b(t.Obj)t.Obj v
    return out
  }
  method static b(t.Obj)t.Obj {
    local v t.Obj
    v = param 0 t.Obj
    virtualinvoke v t.Obj.touch()void
    return v
  }
}
class t.Obj extends java.lang.Object {
  method touch()void {
    return
  }
}`
	set1, _, _ := summariesOf(t, src)
	set2, _, _ := summariesOf(t, src)
	for _, key := range []string{"t.D.a(t.Obj)t.Obj", "t.D.b(t.Obj)t.Obj"} {
		if !reflect.DeepEqual(set1.Of(key), set2.Of(key)) {
			t.Errorf("%s: summaries differ across runs", key)
		}
	}
	a := set1.Of("t.D.a(t.Obj)t.Obj")
	// a's parameter is passed to b, which touches it: CallsOn and Uses
	// propagate through the summary.
	if a.RetFrom&(1<<1) == 0 {
		t.Errorf("a passes its param through b to the return: %b", a.RetFrom)
	}
	if len(a.CallsOn[1]) != 1 || a.CallsOn[1][0].Callee.Name != "touch" {
		t.Errorf("a.CallsOn[1]: %+v", a.CallsOn[1])
	}
	if !a.UsesToken(1) {
		t.Error("a's param is used transitively")
	}
}

func TestSummaryCancel(t *testing.T) {
	prog := jimple.MustParse(`class t.C extends java.lang.Object {
  method m()void {
    return
  }
}`)
	h := hierarchy.New(prog)
	man := &android.Manifest{Package: "t"}
	man.Normalize()
	cg := callgraph.Build(h, man)
	var methods []*jimple.Method
	for _, c := range prog.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				methods = append(methods, m)
			}
		}
	}
	wantErr := context_DeadlineExceeded{}
	_, err := ComputeSummaries(cg, methods, SummaryConfig{Cancel: func() error { return wantErr }})
	if err == nil {
		t.Fatal("Cancel should abort the computation")
	}
}

// context_DeadlineExceeded avoids importing context for one sentinel.
type context_DeadlineExceeded struct{}

func (context_DeadlineExceeded) Error() string { return "deadline" }

func TestInfeasibleEdges(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m()void {
    local flag int
    local x int
    flag = 1
    if flag == 1 goto L1
    x = 0
    goto L2
    L1:
    x = 1
    L2:
    return x
  }
}`)
	g := cfg.New(m)
	cp := NewConstProp(NewReachDefs(g))
	dead := InfeasibleEdges(g, cp)
	// The branch is always taken: the fall-through edge 1→2 is dead.
	if len(dead) != 1 || dead[0] != [2]int{1, 2} {
		t.Fatalf("InfeasibleEdges: %v", dead)
	}
	pruned := g.WithoutEdges(dead)
	reach := pruned.Reachable()
	if reach[2] || reach[3] {
		t.Error("the never-taken arm should be unreachable after pruning")
	}
	if !reach[4] || !reach[5] {
		t.Error("the taken arm must stay reachable")
	}
}

func TestBranchTakenAndValueAt(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m(int)void {
    local u int
    local k int
    u = param 0 int
    k = 3
    if k >= 2 goto L1
    return
    L1:
    if u == 0 goto L2
    return
    L2:
    return
  }
}`)
	cp := NewConstProp(NewReachDefs(cfg.New(m)))
	if taken, known := cp.BranchTaken(2); !known || !taken {
		t.Errorf("k >= 2 with k=3: taken=%v known=%v", taken, known)
	}
	if _, known := cp.BranchTaken(4); known {
		t.Error("u == 0 depends on the parameter: must be unknown")
	}
	if _, known := cp.BranchTaken(0); known {
		t.Error("non-if statement must report unknown")
	}
	if v, ok := cp.ValueAt(2, jimple.IntConst{V: 7}); !ok || v != 7 {
		t.Errorf("ValueAt const: %d %v", v, ok)
	}
}

// resolverFor builds the per-site summary resolver the checkers use,
// from a computed set and the call graph.
func resolverFor(set *SummarySet, cg *callgraph.Graph, m *jimple.Method) SummaryResolver {
	edges := cg.OutEdges(m.Sig.Key())
	return func(site int) []*TaintSummary {
		var out []*TaintSummary
		for _, e := range edges {
			if e.Site != site || e.Kind != callgraph.EdgeCall {
				continue
			}
			if s := set.Of(e.Callee.Key()); s != nil {
				out = append(out, s)
			}
		}
		return out
	}
}

func TestAllocSitesOfFieldMediated(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m()void {
    local h t.Holder
    local a t.Client
    local b t.Client
    local c t.Client
    h = new t.Holder
    specialinvoke h t.Holder.<init>()void
    a = new t.Client
    specialinvoke a t.Client.<init>()void
    field(h,t.Holder,cl) = a
    b = field(h,t.Holder,cl)
    c = b
    virtualinvoke c t.Client.get()void
    return
  }
}`)
	rd := NewReachDefs(cfg.New(m))
	// The chain c ← b ← field load stops at the field load: a field read
	// is an originating definition (the engine does not track heap flow
	// backward through stores).
	allocs := AllocSitesOf(rd, 7, "c")
	if len(allocs) != 1 || allocs[0] != 5 {
		t.Errorf("AllocSitesOf through field load: %v, want [5]", allocs)
	}
	// The direct chain from the alloc still resolves to the new site.
	if allocs := AllocSitesOf(rd, 4, "a"); len(allocs) != 1 || allocs[0] != 2 {
		t.Errorf("AllocSitesOf direct: %v, want [2]", allocs)
	}
}

func TestCallsOnObjectFieldMediatedForward(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m()void {
    local h t.Holder
    local a t.Client
    local b t.Client
    local r t.Response
    h = new t.Holder
    specialinvoke h t.Holder.<init>()void
    a = new t.Client
    specialinvoke a t.Client.<init>()void
    field(h,t.Holder,cl) = a
    b = field(h,t.Holder,cl)
    virtualinvoke b t.Client.setTimeout(int)void 1500
    r = virtualinvoke a t.Client.get()t.Response
    return
  }
}`)
	g := cfg.New(m)
	rd := NewReachDefs(g)
	calls := CallsOnObject(g, rd, 7, "a")
	seen := map[string]int{}
	for _, oc := range calls {
		seen[oc.Callee.Name]++
	}
	// The store taints the holder; the load from the tainted holder
	// aliases the object, so the call through b is attributed to it.
	if seen["setTimeout"] != 1 {
		t.Errorf("field-mediated alias call missed: %+v", calls)
	}
	if seen["get"] != 1 {
		t.Errorf("request call missed: %+v", calls)
	}
}

func TestCallsOnObjectInterHelperAndFactory(t *testing.T) {
	set, cg, methods := summariesOf(t, `class t.T extends java.lang.Object {
  method static caller()void {
    local c t.Client
    local d t.Client
    local r t.Response
    c = new t.Client
    specialinvoke c t.Client.<init>()void
    staticinvoke t.T.configure(t.Client)void c
    d = staticinvoke t.T.make()t.Client
    r = virtualinvoke c t.Client.get()t.Response
    return
  }
  method static configure(t.Client)void {
    local cl t.Client
    cl = param 0 t.Client
    virtualinvoke cl t.Client.setTimeout(int)void 5000
    return
  }
  method static make()t.Client {
    local cl t.Client
    cl = new t.Client
    specialinvoke cl t.Client.<init>()void
    virtualinvoke cl t.Client.setMaxRetries(int)void 2
    return cl
  }
}
class t.Client extends java.lang.Object {
  method <init>()void {
    return
  }
}`)
	var caller *jimple.Method
	for _, m := range methods {
		if m.Sig.Name == "caller" {
			caller = m
		}
	}
	if caller == nil {
		t.Fatal("caller not found")
	}
	g := cfg.New(caller)
	rd := NewReachDefs(g)
	resolve := resolverFor(set, cg, caller)

	// Object c: configured through the helper. The summary-mapped call
	// carries the helper-context constant argument.
	calls := CallsOnObjectInter(g, rd, 4, "c", resolve)
	var helperCfg *ObjectCall
	for i := range calls {
		if calls[i].Callee.Name == "setTimeout" {
			helperCfg = &calls[i]
		}
	}
	if helperCfg == nil {
		t.Fatalf("helper-applied config not surfaced: %+v", calls)
	}
	if len(helperCfg.Args) != 1 || !helperCfg.Args[0].Known || helperCfg.Args[0].V != 5000 {
		t.Errorf("helper call args: %+v", helperCfg.Args)
	}

	// Object d: produced by the factory. CallsOnRet surfaces the
	// factory-side config at the allocation statement.
	calls = CallsOnObjectInter(g, rd, 5, "d", resolve)
	var factoryCfg *ObjectCall
	for i := range calls {
		if calls[i].Callee.Name == "setMaxRetries" {
			factoryCfg = &calls[i]
		}
	}
	if factoryCfg == nil {
		t.Fatalf("factory-applied config not surfaced: %+v", calls)
	}
	if factoryCfg.Stmt != 3 {
		t.Errorf("factory config should anchor at the call site: %+v", factoryCfg)
	}
	if len(factoryCfg.Args) != 1 || !factoryCfg.Args[0].Known || factoryCfg.Args[0].V != 2 {
		t.Errorf("factory call args: %+v", factoryCfg.Args)
	}

	// A nil resolver degrades to the intraprocedural walk: the helper-
	// and factory-applied config disappears.
	intra := CallsOnObjectInter(g, rd, 4, "c", nil)
	for _, oc := range intra {
		if oc.Callee.Name == "setTimeout" {
			t.Errorf("intraprocedural walk must not see the helper config: %+v", intra)
		}
	}
}
