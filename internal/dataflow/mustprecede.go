package dataflow

import (
	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/jimple"
)

// GenFunc decides whether executing stmt of m establishes the tracked
// condition (e.g. "a connectivity check has run").
type GenFunc func(m *jimple.Method, stmt int, inv jimple.InvokeExpr) bool

// MustPrecede is an interprocedural, context-insensitive must-analysis:
// it computes, for every statement of every method reachable from the
// app's entry points, whether the tracked condition has definitely been
// established on all paths from every entry point to that statement.
//
// NChecker's Checker 1 instantiates it with "invokes a connectivity-check
// API" to decide whether each network request is guarded (paper §4.4.1:
// "For each path from the entry point to the target API, NChecker checks
// if there is connectivity checking API invoked on the path"). Like the
// paper's implementation it is path-insensitive: the check only needs to
// be invoked, not to govern the branch — which reproduces the false
// negatives §5.3 reports.
type MustPrecede struct {
	cg    *callgraph.Graph
	gen   GenFunc
	cfgOf CFGProvider
	fact  map[string][]bool // method key -> per-statement "definitely established before stmt"
}

// CFGProvider supplies the control-flow graph of a method. Passing a
// memoizing provider lets the analysis share CFGs with other passes of
// the same scan instead of rebuilding them.
type CFGProvider func(*jimple.Method) *cfg.Graph

// NewMustPrecede runs the analysis over all entry points of cg, building
// a fresh CFG per reachable method.
func NewMustPrecede(cg *callgraph.Graph, gen GenFunc) *MustPrecede {
	return NewMustPrecedeWith(cg, gen, nil)
}

// NewMustPrecedeWith is NewMustPrecede with an explicit CFG provider
// (nil falls back to cfg.New). The provider must be safe for use from
// this goroutine; results are identical to NewMustPrecede.
func NewMustPrecedeWith(cg *callgraph.Graph, gen GenFunc, cfgOf CFGProvider) *MustPrecede {
	if cfgOf == nil {
		cfgOf = cfg.New
	}
	mp := &MustPrecede{cg: cg, gen: gen, cfgOf: cfgOf, fact: make(map[string][]bool)}
	mp.solve()
	return mp
}

// FactBefore reports whether the condition definitely holds immediately
// before stmt of the method with the given signature key executes. It
// returns false for methods outside the reachable set.
func (mp *MustPrecede) FactBefore(methodKey string, stmt int) bool {
	f := mp.fact[methodKey]
	if f == nil || stmt < 0 || stmt >= len(f) {
		return false
	}
	return f[stmt]
}

type mpMethodState struct {
	m       *jimple.Method
	g       *cfg.Graph
	in      []bool // per node
	out     []bool
	gen     []bool // per node, GenFunc result (pure, so computed once)
	summary bool   // every entry→exit path establishes the condition
	entry   bool   // condition definitely holds at method entry

	// Pre-resolved interprocedural links, computed once after the state
	// set is fixed so the fixpoint iterations never touch the call graph
	// or re-render signature keys.
	siteCallees    map[int][]*mpMethodState // EdgeCall targets per call site
	siteUnresolved map[int]bool             // site has an EdgeCall target outside the state set
	inCalls        []mpInEdge               // reachable call sites dispatching into this method
}

// mpInEdge is one pre-resolved incoming call: the caller's state, the
// site index, and whether the trigger statement itself establishes the
// condition before dispatch (precomputable: GenFunc is pure).
type mpInEdge struct {
	caller *mpMethodState
	site   int
	estab  bool
}

func (mp *MustPrecede) solve() {
	// Reachable methods from all entries.
	reach := make(map[string]bool)
	for _, e := range mp.cg.Entries() {
		for k := range mp.cg.ReachableFrom(e.Method.Sig) {
			reach[k] = true
		}
	}
	entryKeys := make(map[string]bool)
	for _, e := range mp.cg.Entries() {
		entryKeys[e.Method.Sig.Key()] = true
	}
	states := make(map[string]*mpMethodState)
	for k := range reach {
		m := mp.cg.Method(k)
		if m == nil {
			continue
		}
		g := mp.cfgOf(m)
		st := &mpMethodState{
			m:       m,
			g:       g,
			in:      make([]bool, g.NumNodes()),
			out:     make([]bool, g.NumNodes()),
			gen:     make([]bool, g.NumNodes()),
			summary: true, // optimistic; lowered by iteration
			entry:   !entryKeys[k],
		}
		// GenFunc is pure, so its per-statement verdicts are fixed before
		// the fixpoint starts; evaluating it here keeps the (checker-
		// supplied, often key-rendering) closure out of the inner loop.
		for u := 0; u < len(m.Body); u++ {
			if inv, ok := jimple.InvokeOf(m.Body[u]); ok {
				st.gen[u] = mp.gen(m, u, inv)
			}
		}
		// Must-analysis requires optimistic initialization (start at TOP
		// and lower): pessimistic false would be sticky around loop back
		// edges and never recover.
		for i := range st.in {
			st.in[i] = true
			st.out[i] = true
		}
		states[k] = st
	}
	// Resolve the interprocedural links once: per call site the callee
	// states (genAt), per method the incoming calls with their
	// establishes-before-dispatch bit (entryFact). The fixpoint below then
	// runs on direct pointers.
	for k, st := range states {
		for _, e := range mp.cg.OutEdges(k) {
			if e.Kind != callgraph.EdgeCall {
				continue
			}
			if callee := states[e.CalleeKey()]; callee != nil {
				if st.siteCallees == nil {
					st.siteCallees = make(map[int][]*mpMethodState)
				}
				st.siteCallees[e.Site] = append(st.siteCallees[e.Site], callee)
			} else {
				if st.siteUnresolved == nil {
					st.siteUnresolved = make(map[int]bool)
				}
				st.siteUnresolved[e.Site] = true
			}
		}
		for _, e := range mp.cg.InEdges(k) {
			caller := states[e.CallerKey()]
			if caller == nil {
				continue
			}
			st.inCalls = append(st.inCalls, mpInEdge{
				caller: caller,
				site:   e.Site,
				estab:  mp.siteEstablishesBeforeDispatch(caller, e),
			})
		}
	}
	// Global fixpoint: facts only move true→false, so this terminates.
	for changed := true; changed; {
		changed = false
		for _, st := range states {
			if mp.solveMethod(st) {
				changed = true
			}
		}
		// Recompute entry facts from call-site facts.
		for k, st := range states {
			if entryKeys[k] {
				continue
			}
			newEntry := entryFact(st)
			if newEntry != st.entry {
				st.entry = newEntry
				changed = true
			}
		}
	}
	for k, st := range states {
		mp.fact[k] = st.in[:len(st.m.Body)]
	}
}

// entryFact is the meet (AND) over the facts holding before every call
// site that can invoke the method. A method never called from the
// reachable region keeps fact true vacuously — it only matters if later
// iterations discover a call.
func entryFact(st *mpMethodState) bool {
	for _, c := range st.inCalls {
		if !c.caller.in[c.site] && !c.estab {
			return false
		}
	}
	return true
}

// siteEstablishesBeforeDispatch reports whether the trigger statement
// itself establishes the condition before control reaches the callee
// (it does when the trigger invocation is itself a gen, e.g. a request
// wrapped in a checking helper — conservative: only the direct GenFunc).
func (mp *MustPrecede) siteEstablishesBeforeDispatch(caller *mpMethodState, e callgraph.Edge) bool {
	return e.Site >= 0 && e.Site < len(caller.gen) && caller.gen[e.Site]
}

// solveMethod runs the intraprocedural forward must-analysis for one
// method given the current callee summaries; reports whether anything
// changed.
func (mp *MustPrecede) solveMethod(st *mpMethodState) bool {
	g := st.g
	n := g.NumNodes()
	changed := false
	// Iterate locally to a fixpoint (bodies are small).
	for localChange := true; localChange; {
		localChange = false
		for u := 0; u < n; u++ {
			// in = meet (AND) over predecessor outs; the entry node also
			// meets the interprocedural entry fact. Unreachable nodes are
			// vacuously true, which cannot lower any reachable fact.
			in := true
			if u == 0 {
				in = st.entry
			}
			for _, p := range g.Preds(u) {
				in = in && st.out[p]
			}
			out := in || mp.genAt(st, u)
			if in != st.in[u] {
				st.in[u] = in
				localChange, changed = true, true
			}
			if out != st.out[u] {
				st.out[u] = out
				localChange, changed = true, true
			}
		}
	}
	newSummary := st.out[g.Exit()]
	if newSummary != st.summary {
		st.summary = newSummary
		changed = true
	}
	return changed
}

// genAt decides whether node u establishes the condition: either its
// statement matches GenFunc directly, or it is a call site whose every
// (synchronously) dispatched target has a true summary.
func (mp *MustPrecede) genAt(st *mpMethodState, u int) bool {
	if u >= len(st.m.Body) {
		return false
	}
	if st.gen[u] {
		return true
	}
	// Call into app methods: condition established if every possible
	// synchronous callee establishes it on all its paths.
	callees := st.siteCallees[u]
	if len(callees) == 0 || st.siteUnresolved[u] {
		return false
	}
	for _, callee := range callees {
		if !callee.summary {
			return false
		}
	}
	return true
}
