package dataflow

import (
	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/jimple"
)

// GenFunc decides whether executing stmt of m establishes the tracked
// condition (e.g. "a connectivity check has run").
type GenFunc func(m *jimple.Method, stmt int, inv jimple.InvokeExpr) bool

// MustPrecede is an interprocedural, context-insensitive must-analysis:
// it computes, for every statement of every method reachable from the
// app's entry points, whether the tracked condition has definitely been
// established on all paths from every entry point to that statement.
//
// NChecker's Checker 1 instantiates it with "invokes a connectivity-check
// API" to decide whether each network request is guarded (paper §4.4.1:
// "For each path from the entry point to the target API, NChecker checks
// if there is connectivity checking API invoked on the path"). Like the
// paper's implementation it is path-insensitive: the check only needs to
// be invoked, not to govern the branch — which reproduces the false
// negatives §5.3 reports.
type MustPrecede struct {
	cg    *callgraph.Graph
	gen   GenFunc
	cfgOf CFGProvider
	fact  map[string][]bool // method key -> per-statement "definitely established before stmt"
}

// CFGProvider supplies the control-flow graph of a method. Passing a
// memoizing provider lets the analysis share CFGs with other passes of
// the same scan instead of rebuilding them.
type CFGProvider func(*jimple.Method) *cfg.Graph

// NewMustPrecede runs the analysis over all entry points of cg, building
// a fresh CFG per reachable method.
func NewMustPrecede(cg *callgraph.Graph, gen GenFunc) *MustPrecede {
	return NewMustPrecedeWith(cg, gen, nil)
}

// NewMustPrecedeWith is NewMustPrecede with an explicit CFG provider
// (nil falls back to cfg.New). The provider must be safe for use from
// this goroutine; results are identical to NewMustPrecede.
func NewMustPrecedeWith(cg *callgraph.Graph, gen GenFunc, cfgOf CFGProvider) *MustPrecede {
	if cfgOf == nil {
		cfgOf = cfg.New
	}
	mp := &MustPrecede{cg: cg, gen: gen, cfgOf: cfgOf, fact: make(map[string][]bool)}
	mp.solve()
	return mp
}

// FactBefore reports whether the condition definitely holds immediately
// before stmt of the method with the given signature key executes. It
// returns false for methods outside the reachable set.
func (mp *MustPrecede) FactBefore(methodKey string, stmt int) bool {
	f := mp.fact[methodKey]
	if f == nil || stmt < 0 || stmt >= len(f) {
		return false
	}
	return f[stmt]
}

type mpMethodState struct {
	m       *jimple.Method
	g       *cfg.Graph
	in      []bool // per node
	out     []bool
	summary bool // every entry→exit path establishes the condition
	entry   bool // condition definitely holds at method entry
}

func (mp *MustPrecede) solve() {
	// Reachable methods from all entries.
	reach := make(map[string]bool)
	for _, e := range mp.cg.Entries() {
		for k := range mp.cg.ReachableFrom(e.Method.Sig) {
			reach[k] = true
		}
	}
	entryKeys := make(map[string]bool)
	for _, e := range mp.cg.Entries() {
		entryKeys[e.Method.Sig.Key()] = true
	}
	states := make(map[string]*mpMethodState)
	for k := range reach {
		m := mp.cg.Method(k)
		if m == nil {
			continue
		}
		g := mp.cfgOf(m)
		st := &mpMethodState{
			m:       m,
			g:       g,
			in:      make([]bool, g.NumNodes()),
			out:     make([]bool, g.NumNodes()),
			summary: true, // optimistic; lowered by iteration
			entry:   !entryKeys[k],
		}
		// Must-analysis requires optimistic initialization (start at TOP
		// and lower): pessimistic false would be sticky around loop back
		// edges and never recover.
		for i := range st.in {
			st.in[i] = true
			st.out[i] = true
		}
		states[k] = st
	}
	// Global fixpoint: facts only move true→false, so this terminates.
	for changed := true; changed; {
		changed = false
		for k, st := range states {
			if mp.solveMethod(k, st, states) {
				changed = true
			}
		}
		// Recompute entry facts from call-site facts.
		for k, st := range states {
			if entryKeys[k] {
				continue
			}
			newEntry := mp.entryFact(k, states)
			if newEntry != st.entry {
				st.entry = newEntry
				changed = true
			}
		}
	}
	for k, st := range states {
		mp.fact[k] = st.in[:len(st.m.Body)]
	}
}

// entryFact is the meet (AND) over the facts holding before every call
// site that can invoke method k. A method never called from the reachable
// region keeps fact true vacuously — it only matters if later iterations
// discover a call.
func (mp *MustPrecede) entryFact(k string, states map[string]*mpMethodState) bool {
	for _, e := range mp.cg.InEdges(k) {
		caller := states[e.Caller.Key()]
		if caller == nil {
			continue
		}
		if !caller.in[e.Site] && !mp.siteEstablishesBeforeDispatch(caller, e) {
			return false
		}
	}
	return true
}

// siteEstablishesBeforeDispatch reports whether the trigger statement
// itself establishes the condition before control reaches the callee
// (it does when the trigger invocation is itself a gen, e.g. a request
// wrapped in a checking helper — conservative: only the direct GenFunc).
func (mp *MustPrecede) siteEstablishesBeforeDispatch(caller *mpMethodState, e callgraph.Edge) bool {
	inv, ok := jimple.InvokeOf(caller.m.Body[e.Site])
	if !ok {
		return false
	}
	return mp.gen(caller.m, e.Site, inv)
}

// solveMethod runs the intraprocedural forward must-analysis for one
// method given the current callee summaries; reports whether anything
// changed.
func (mp *MustPrecede) solveMethod(k string, st *mpMethodState, states map[string]*mpMethodState) bool {
	g := st.g
	n := g.NumNodes()
	changed := false
	// Iterate locally to a fixpoint (bodies are small).
	for localChange := true; localChange; {
		localChange = false
		for u := 0; u < n; u++ {
			// in = meet (AND) over predecessor outs; the entry node also
			// meets the interprocedural entry fact. Unreachable nodes are
			// vacuously true, which cannot lower any reachable fact.
			in := true
			if u == 0 {
				in = st.entry
			}
			for _, p := range g.Preds(u) {
				in = in && st.out[p]
			}
			out := in || mp.genAt(st, u, states)
			if in != st.in[u] {
				st.in[u] = in
				localChange, changed = true, true
			}
			if out != st.out[u] {
				st.out[u] = out
				localChange, changed = true, true
			}
		}
	}
	newSummary := st.out[g.Exit()]
	if newSummary != st.summary {
		st.summary = newSummary
		changed = true
	}
	return changed
}

// genAt decides whether node u establishes the condition: either its
// statement matches GenFunc directly, or it is a call site whose every
// (synchronously) dispatched target has a true summary.
func (mp *MustPrecede) genAt(st *mpMethodState, u int, states map[string]*mpMethodState) bool {
	if u >= len(st.m.Body) {
		return false
	}
	inv, ok := jimple.InvokeOf(st.m.Body[u])
	if !ok {
		return false
	}
	if mp.gen(st.m, u, inv) {
		return true
	}
	// Call into app methods: condition established if every possible
	// synchronous callee establishes it on all its paths.
	sawCallee := false
	allGen := true
	for _, e := range mp.cg.OutEdges(st.m.Sig.Key()) {
		if e.Site != u || e.Kind != callgraph.EdgeCall {
			continue
		}
		callee := states[e.Callee.Key()]
		if callee == nil {
			allGen = false
			continue
		}
		sawCallee = true
		allGen = allGen && callee.summary
	}
	return sawCallee && allGen
}
