package dataflow

import (
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/jimple"
)

func methodOf(t *testing.T, src string) *jimple.Method {
	t.Helper()
	prog := jimple.MustParse(src)
	if err := prog.Validate(); err != nil {
		t.Fatalf("test method invalid: %v", err)
	}
	for _, c := range prog.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				return m
			}
		}
	}
	t.Fatal("no method found")
	return nil
}

func TestReachDefsStraightLine(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m()void {
    local x int
    x = 1
    x = 2
    return x
  }
}`)
	rd := NewReachDefs(cfg.New(m))
	// At the return (stmt 2), only the second def (stmt 1) reaches.
	defs := rd.DefsReaching(2, "x")
	if len(defs) != 1 || defs[0] != 1 {
		t.Errorf("DefsReaching: %v", defs)
	}
	if rd.DefOfStmt(0) != "x" || rd.DefOfStmt(2) != "" {
		t.Error("DefOfStmt misbehaves")
	}
}

func TestReachDefsDiamond(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m(int)void {
    local c int
    local x int
    c = param 0 int
    if c == 0 goto L1
    x = 1
    goto L2
    L1:
    x = 2
    L2:
    return x
  }
}`)
	rd := NewReachDefs(cfg.New(m))
	// Both defs of x (stmts 2 and 4) reach the return (stmt 5).
	defs := rd.DefsReaching(5, "x")
	if len(defs) != 2 || defs[0] != 2 || defs[1] != 4 {
		t.Errorf("DefsReaching at join: %v", defs)
	}
}

func TestConstPropAgreeingPaths(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m(int)void {
    local c int
    local x int
    local y int
    c = param 0 int
    if c == 0 goto L1
    x = 5
    goto L2
    L1:
    x = 5
    L2:
    y = x + 2
    return y
  }
}`)
	g := cfg.New(m)
	cp := NewConstProp(NewReachDefs(g))
	v, ok := cp.IntAt(6, "y")
	// y defined at 5; at stmt 6 (return) y == 7.
	if !ok || v != 7 {
		t.Errorf("IntAt(y) = %d, %v; want 7, true", v, ok)
	}
	if v, ok := cp.IntAt(5, "x"); !ok || v != 5 {
		t.Errorf("IntAt(x) = %d, %v; want 5, true", v, ok)
	}
}

func TestConstPropConflictingPaths(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m(int)void {
    local c int
    local x int
    c = param 0 int
    if c == 0 goto L1
    x = 1
    goto L2
    L1:
    x = 2
    L2:
    return x
  }
}`)
	cp := NewConstProp(NewReachDefs(cfg.New(m)))
	if _, ok := cp.IntAt(5, "x"); ok {
		t.Error("conflicting paths should not be constant")
	}
}

func TestConstPropNonConstant(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m(int)void {
    local x int
    x = param 0 int
    return x
  }
}`)
	cp := NewConstProp(NewReachDefs(cfg.New(m)))
	if _, ok := cp.IntAt(1, "x"); ok {
		t.Error("parameter value must not be constant")
	}
}

func TestConstPropArgInt(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m()void {
    local n int
    local c t.Client
    c = new t.Client
    specialinvoke c t.Client.<init>()void
    n = 3
    virtualinvoke c t.Client.setMaxRetries(int)void n
    virtualinvoke c t.Client.setTimeout(int)void 2500
    return
  }
}`)
	cp := NewConstProp(NewReachDefs(cfg.New(m)))
	inv1, _ := jimple.InvokeOf(m.Body[3])
	if v, ok := cp.ArgInt(3, inv1, 0); !ok || v != 3 {
		t.Errorf("ArgInt via local: %d, %v", v, ok)
	}
	inv2, _ := jimple.InvokeOf(m.Body[4])
	if v, ok := cp.ArgInt(4, inv2, 0); !ok || v != 2500 {
		t.Errorf("ArgInt literal: %d, %v", v, ok)
	}
	if _, ok := cp.ArgInt(4, inv2, 9); ok {
		t.Error("out-of-range arg index should fail")
	}
}

func TestForwardTaintCopiesAndCalls(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m()void {
    local r t.Response
    local s t.Response
    local b java.lang.String
    local clean int
    r = staticinvoke t.Client.get()t.Response
    s = r
    b = virtualinvoke s t.Response.getBody()java.lang.String
    clean = 1
    return
  }
}`)
	g := cfg.New(m)
	res := ForwardTaint(g, map[int][]string{0: {"r"}}, DefaultTaintOptions())
	if !res.TaintedAt(1, "r") {
		t.Error("r should be tainted after its def")
	}
	if !res.TaintedAt(2, "s") {
		t.Error("s should be tainted via copy")
	}
	if !res.TaintedAt(3, "b") {
		t.Error("b should be tainted via receiver call")
	}
	if res.TaintedAt(4, "clean") {
		t.Error("clean must not be tainted")
	}
	locals := res.TaintedLocalsAt(4)
	if len(locals) != 3 {
		t.Errorf("TaintedLocalsAt: %v", locals)
	}
}

func TestForwardTaintStrongUpdate(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m()void {
    local r t.Response
    r = staticinvoke t.Client.get()t.Response
    r = null
    return
  }
}`)
	g := cfg.New(m)
	res := ForwardTaint(g, map[int][]string{0: {"r"}}, DefaultTaintOptions())
	if !res.TaintedAt(1, "r") {
		t.Error("r tainted before overwrite")
	}
	if res.TaintedAt(2, "r") {
		t.Error("strong update should clear taint")
	}
}

func TestForwardTaintFieldStore(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  field holder t.Holder
  method m()void {
    local h t.Holder
    local r t.Response
    local x t.Response
    h = new t.Holder
    specialinvoke h t.Holder.<init>()void
    r = staticinvoke t.Client.get()t.Response
    field(h,t.Holder,resp) = r
    x = field(h,t.Holder,resp)
    return
  }
}`)
	g := cfg.New(m)
	res := ForwardTaint(g, map[int][]string{2: {"r"}}, DefaultTaintOptions())
	if !res.TaintedAt(4, "h") {
		t.Error("object should be tainted by storing a tainted value")
	}
	if !res.TaintedAt(5, "x") {
		t.Error("field load from tainted object should be tainted")
	}
}

func TestAllocSitesOf(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m()void {
    local a t.Client
    local b t.Client
    local c t.Client
    a = new t.Client
    specialinvoke a t.Client.<init>()void
    b = a
    c = cast t.Client b
    virtualinvoke c t.Client.get()void
    return
  }
}`)
	g := cfg.New(m)
	rd := NewReachDefs(g)
	allocs := AllocSitesOf(rd, 4, "c")
	if len(allocs) != 1 || allocs[0] != 0 {
		t.Errorf("AllocSitesOf: %v, want [0]", allocs)
	}
}

func TestCallsOnObject(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m()void {
    local c t.Client
    local d t.Client
    local other t.Client
    local r t.Response
    c = new t.Client
    specialinvoke c t.Client.<init>()void
    virtualinvoke c t.Client.setTimeout(int)void 2500
    d = c
    virtualinvoke d t.Client.setMaxRetries(int)void 2
    other = new t.Client
    specialinvoke other t.Client.<init>()void
    virtualinvoke other t.Client.setTimeout(int)void 1
    r = virtualinvoke c t.Client.get()t.Response
    return
  }
}`)
	g := cfg.New(m)
	rd := NewReachDefs(g)
	// Request site is stmt 9 (r = c.get()).
	calls := CallsOnObject(g, rd, 9, "c")
	var names []string
	for _, oc := range calls {
		names = append(names, oc.Callee.Name)
	}
	want := map[string]bool{"<init>": true, "setTimeout": true, "setMaxRetries": true, "get": true}
	seen := map[string]int{}
	for _, n := range names {
		seen[n]++
	}
	if !want["setTimeout"] || seen["setTimeout"] != 1 {
		t.Errorf("calls on object: %v (setTimeout on the *other* client must be excluded)", names)
	}
	if seen["setMaxRetries"] != 1 {
		t.Errorf("alias call missed: %v", names)
	}
	if seen["get"] != 1 {
		t.Errorf("request call missed: %v", names)
	}
}

func TestBackwardSlice(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m(int)void {
    local a int
    local b int
    local c int
    local unrelated int
    a = param 0 int
    unrelated = 42
    b = a + 1
    if b > 10 goto L1
    c = 1
    goto L2
    L1:
    c = 2
    L2:
    return c
  }
}`)
	g := cfg.New(m)
	sl := NewSlicer(g, NewReachDefs(g))
	slice := sl.BackwardSlice(7) // return c
	// Slice must contain: defs of c (4, 6), the branch (3), def of b (2),
	// def of a (0) — but not unrelated (1).
	for _, want := range []int{7, 4, 6, 3, 2, 0} {
		if !slice[want] {
			t.Errorf("slice missing stmt %d: %v", want, sl.SortedSlice(7))
		}
	}
	if slice[1] {
		t.Errorf("slice must not include unrelated def: %v", sl.SortedSlice(7))
	}
	if !sl.DependsOnAny(7, map[int]bool{2: true}) {
		t.Error("DependsOnAny should see the b dependency")
	}
	if sl.DependsOnAny(7, map[int]bool{1: true}) {
		t.Error("DependsOnAny false positive on unrelated stmt")
	}
}

// Property: a backward slice always contains its seed and is closed under
// taking slices again (slicing any member adds nothing new).
func TestQuickSliceClosure(t *testing.T) {
	m := methodOf(t, `class t.T extends java.lang.Object {
  method m(int)void {
    local a int
    local b int
    local c int
    a = param 0 int
    b = a * 2
    if b > 4 goto L1
    c = b + 1
    goto L2
    L1:
    c = a
    L2:
    b = c - 1
    return b
  }
}`)
	g := cfg.New(m)
	sl := NewSlicer(g, NewReachDefs(g))
	n := len(m.Body)
	f := func(seedRaw uint8) bool {
		seed := int(seedRaw) % n
		slice := sl.BackwardSlice(seed)
		if !slice[seed] {
			return false
		}
		for member := range slice {
			sub := sl.BackwardSlice(member)
			for x := range sub {
				if !slice[x] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
