package dataflow

import (
	"repro/internal/jimple"
)

// ConstProp evaluates integer constants of locals at statements using
// reaching definitions, following copy chains. NChecker uses it to recover
// the arguments of configuration APIs such as setMaxRetries (paper §4.4.2:
// "NChecker infers the value of config APIs through constant
// propagation").
type ConstProp struct {
	rd *ReachDefs
}

// NewConstProp wraps a reaching-definitions result.
func NewConstProp(rd *ReachDefs) *ConstProp { return &ConstProp{rd: rd} }

// maxConstDepth bounds copy-chain recursion; chains longer than this are
// treated as non-constant.
const maxConstDepth = 32

// IntAt evaluates local to an integer constant at stmt. ok is false when
// the local may hold more than one value, a non-constant value, or when
// evaluation exceeds the recursion bound.
func (c *ConstProp) IntAt(stmt int, local string) (int64, bool) {
	return c.intAt(stmt, local, 0)
}

func (c *ConstProp) intAt(stmt int, local string, depth int) (int64, bool) {
	if depth > maxConstDepth {
		return 0, false
	}
	defs := c.rd.DefsReaching(stmt, local)
	if len(defs) == 0 {
		return 0, false
	}
	var val int64
	have := false
	for _, d := range defs {
		v, ok := c.evalDef(d, depth)
		if !ok {
			return 0, false
		}
		if have && v != val {
			return 0, false // conflicting constants on different paths
		}
		val, have = v, true
	}
	return val, have
}

func (c *ConstProp) evalDef(def int, depth int) (int64, bool) {
	a, ok := c.rd.g.Method.Body[def].(*jimple.AssignStmt)
	if !ok {
		return 0, false
	}
	return c.evalValue(def, a.RHS, depth+1)
}

func (c *ConstProp) evalValue(at int, v jimple.Value, depth int) (int64, bool) {
	switch v := v.(type) {
	case jimple.IntConst:
		return v.V, true
	case jimple.Local:
		return c.intAt(at, v.Name, depth)
	case jimple.CastExpr:
		return c.evalValue(at, v.V, depth)
	case jimple.BinExpr:
		l, okL := c.evalValue(at, v.L, depth)
		r, okR := c.evalValue(at, v.R, depth)
		if !okL || !okR {
			return 0, false
		}
		return foldBin(v.Op, l, r)
	case jimple.NegExpr:
		b, ok := c.evalValue(at, v.V, depth)
		if !ok {
			return 0, false
		}
		if b == 0 {
			return 1, true
		}
		return 0, true
	default:
		return 0, false
	}
}

func foldBin(op jimple.BinOp, l, r int64) (int64, bool) {
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case jimple.OpAdd:
		return l + r, true
	case jimple.OpSub:
		return l - r, true
	case jimple.OpMul:
		return l * r, true
	case jimple.OpDiv:
		if r == 0 {
			return 0, false
		}
		return l / r, true
	case jimple.OpRem:
		if r == 0 {
			return 0, false
		}
		return l % r, true
	case jimple.OpAnd:
		return l & r, true
	case jimple.OpOr:
		return l | r, true
	case jimple.OpXor:
		return l ^ r, true
	case jimple.OpEQ:
		return b2i(l == r), true
	case jimple.OpNE:
		return b2i(l != r), true
	case jimple.OpLT:
		return b2i(l < r), true
	case jimple.OpLE:
		return b2i(l <= r), true
	case jimple.OpGT:
		return b2i(l > r), true
	case jimple.OpGE:
		return b2i(l >= r), true
	}
	return 0, false
}

// ValueAt evaluates an arbitrary expression as if it appeared at stmt,
// folding constants through copy chains, casts, binary comparisons and
// arithmetic, and logical negation. ok is false when any operand may hold
// more than one value or is not statically constant.
func (c *ConstProp) ValueAt(stmt int, v jimple.Value) (int64, bool) {
	return c.evalValue(stmt, v, 0)
}

// BranchTaken evaluates the condition of the if statement at stmt. known
// is false when stmt is not an if statement or its condition does not fold
// to a constant; otherwise taken reports whether the branch is always
// taken (condition non-zero) or never taken. Feasibility pruning uses this
// to find statically-dead CFG edges.
func (c *ConstProp) BranchTaken(stmt int) (taken, known bool) {
	body := c.rd.g.Method.Body
	if stmt < 0 || stmt >= len(body) {
		return false, false
	}
	iff, ok := body[stmt].(*jimple.IfStmt)
	if !ok {
		return false, false
	}
	v, ok := c.evalValue(stmt, iff.Cond, 0)
	if !ok {
		return false, false
	}
	return v != 0, true
}

// ArgInt evaluates the i'th argument of the invocation at stmt as an
// integer constant.
func (c *ConstProp) ArgInt(stmt int, inv jimple.InvokeExpr, i int) (int64, bool) {
	if i < 0 || i >= len(inv.Args) {
		return 0, false
	}
	return c.evalValue(stmt, inv.Args[i], 0)
}

// StrAt evaluates local to a string constant at stmt, following copy
// chains and folding OpAdd concatenation (the `url = base + path` string
// building the endpoint-hygiene checker resolves). ok is false when the
// local may hold more than one value on different paths, a non-constant
// value, or when evaluation exceeds the recursion bound — mirroring
// IntAt's conflicting-definitions and depth rules.
func (c *ConstProp) StrAt(stmt int, local string) (string, bool) {
	return c.strAt(stmt, local, 0)
}

func (c *ConstProp) strAt(stmt int, local string, depth int) (string, bool) {
	if depth > maxConstDepth {
		return "", false
	}
	defs := c.rd.DefsReaching(stmt, local)
	if len(defs) == 0 {
		return "", false
	}
	var val string
	have := false
	for _, d := range defs {
		v, ok := c.evalStrDef(d, depth)
		if !ok {
			return "", false
		}
		if have && v != val {
			return "", false // conflicting constants on different paths
		}
		val, have = v, true
	}
	return val, have
}

func (c *ConstProp) evalStrDef(def int, depth int) (string, bool) {
	a, ok := c.rd.g.Method.Body[def].(*jimple.AssignStmt)
	if !ok {
		return "", false
	}
	return c.evalStrValue(def, a.RHS, depth+1)
}

func (c *ConstProp) evalStrValue(at int, v jimple.Value, depth int) (string, bool) {
	switch v := v.(type) {
	case jimple.StrConst:
		return v.V, true
	case jimple.Local:
		return c.strAt(at, v.Name, depth)
	case jimple.CastExpr:
		return c.evalStrValue(at, v.V, depth)
	case jimple.BinExpr:
		// Only + concatenates strings; every other operator on strings is
		// not a constant expression.
		if v.Op != jimple.OpAdd {
			return "", false
		}
		l, okL := c.evalStrValue(at, v.L, depth)
		r, okR := c.evalStrValue(at, v.R, depth)
		if !okL || !okR {
			return "", false
		}
		return l + r, true
	default:
		return "", false
	}
}

// ArgStr evaluates the i'th argument of the invocation at stmt as a
// string constant, the string mirror of ArgInt.
func (c *ConstProp) ArgStr(stmt int, inv jimple.InvokeExpr, i int) (string, bool) {
	if i < 0 || i >= len(inv.Args) {
		return "", false
	}
	return c.evalStrValue(stmt, inv.Args[i], 0)
}
