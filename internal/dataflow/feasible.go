package dataflow

import (
	"repro/internal/cfg"
	"repro/internal/jimple"
)

// InfeasibleEdges returns the CFG edges of g that constant propagation
// proves can never be taken: for every if statement whose condition folds
// to a constant, the edge of the untaken outcome is statically dead. This
// is the path-feasibility pruning pass — analyses run over
// g.WithoutEdges(InfeasibleEdges(g, cp)) never witness a warning whose
// only paths traverse a statically-false branch (the paper's main
// false-positive class).
//
// An if whose branch target is its own fall-through successor is skipped:
// both outcomes are the same edge, so nothing is dead. The result is in
// statement order.
func InfeasibleEdges(g *cfg.Graph, cp *ConstProp) [][2]int {
	var out [][2]int
	for i, s := range g.Method.Body {
		iff, ok := s.(*jimple.IfStmt)
		if !ok || iff.Target == i+1 {
			continue
		}
		taken, known := cp.BranchTaken(i)
		if !known {
			continue
		}
		if taken {
			out = append(out, [2]int{i, i + 1})
		} else {
			out = append(out, [2]int{i, iff.Target})
		}
	}
	return out
}
