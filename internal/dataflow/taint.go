package dataflow

import (
	"sort"

	"repro/internal/cfg"
	"repro/internal/jimple"
)

// TaintOptions configures forward taint propagation.
type TaintOptions struct {
	// TaintThroughReceiver taints the result of a call whose receiver is
	// tainted (r = resp.getBody() taints r when resp is tainted). On by
	// default via DefaultTaintOptions.
	TaintThroughReceiver bool
	// TaintThroughArgs taints the result of a call when any argument is
	// tainted.
	TaintThroughArgs bool
	// TaintStoredInto taints the base object of a field store whose
	// stored value is tainted (object-level field insensitivity).
	TaintStoredInto bool
	// CalleeSummaries, when non-nil, resolves a call site to its callees'
	// taint summaries, making the propagation interprocedural: call
	// results derive taint through the callee's RetFrom relation instead
	// of the receiver heuristic, and callee state effects (StateFrom)
	// taint the bound caller locals.
	CalleeSummaries SummaryResolver
}

// DefaultTaintOptions matches NChecker's object-taint behaviour.
func DefaultTaintOptions() TaintOptions {
	return TaintOptions{TaintThroughReceiver: true, TaintStoredInto: true}
}

// TaintResult reports, per statement, which locals may be tainted when the
// statement executes (a may-analysis: union over paths).
type TaintResult struct {
	in []map[string]bool // per node
}

// TaintedAt reports whether local may be tainted immediately before stmt
// executes.
func (t *TaintResult) TaintedAt(stmt int, local string) bool {
	if stmt < 0 || stmt >= len(t.in) {
		return false
	}
	return t.in[stmt][local]
}

// TaintedLocalsAt returns the sorted tainted-local set before stmt.
func (t *TaintResult) TaintedLocalsAt(stmt int) []string {
	m := t.in[stmt]
	out := make([]string, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// ForwardTaint propagates taint forward from sources, where sources maps a
// statement index to locals that become tainted immediately after that
// statement executes (e.g. the def site of a response object).
func ForwardTaint(g *cfg.Graph, sources map[int][]string, opts TaintOptions) *TaintResult {
	n := g.NumNodes()
	// Maps stay nil until taint arrives: most nodes of most methods never
	// see a tainted local, and nil-map reads are free. TaintedAt and the
	// transfer's guards all tolerate nil the same way they tolerate empty.
	in := make([]map[string]bool, n)
	out := make([]map[string]bool, n)
	body := g.Method.Body
	work := make([]int, 0, n)
	inWork := make([]bool, n)
	push := func(i int) {
		if !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	for i := 0; i < n; i++ {
		push(i)
	}
	for head := 0; head < len(work); head++ {
		u := work[head]
		inWork[u] = false
		// in[u] = union of out[preds]
		var nu map[string]bool
		for _, p := range g.Preds(u) {
			for l := range out[p] {
				if nu == nil {
					nu = make(map[string]bool, 8)
				}
				nu[l] = true
			}
		}
		in[u] = nu
		// transfer
		var no map[string]bool
		if len(nu) > 0 {
			no = make(map[string]bool, len(nu))
			for l := range nu {
				no[l] = true
			}
		}
		if u < len(body) {
			srcs := sources[u]
			if no == nil && len(srcs) > 0 {
				no = make(map[string]bool, len(srcs))
			}
			if no != nil {
				// With no incoming taint and no sources the transfer is a
				// no-op (every write is guarded by an existing-taint read),
				// so the nil case skips it wholesale.
				applyTaintTransfer(body[u], u, no, opts)
				for _, l := range srcs {
					no[l] = true
				}
			}
		}
		if !sameSet(out[u], no) {
			out[u] = no
			for _, s := range g.Succs(u) {
				push(s)
			}
		}
	}
	return &TaintResult{in: in}
}

func applyTaintTransfer(s jimple.Stmt, at int, taint map[string]bool, opts TaintOptions) {
	// Interprocedural state effects: a callee that stores one input into
	// another's object state taints the bound caller local.
	if opts.CalleeSummaries != nil {
		if inv, ok := jimple.InvokeOf(s); ok {
			applyTaintStateEffects(inv, opts.CalleeSummaries(at), taint)
		}
	}
	a, ok := s.(*jimple.AssignStmt)
	if !ok {
		return
	}
	// Field store: x.f = v may taint x.
	if f, isField := a.LHS.(jimple.FieldRef); isField {
		if opts.TaintStoredInto && f.Base != "" && valueTainted(a.RHS, at, taint, opts) {
			taint[f.Base] = true
		}
		return
	}
	dst := a.LHS.(jimple.Local).Name
	if valueTainted(a.RHS, at, taint, opts) {
		taint[dst] = true
	} else {
		delete(taint, dst) // strong update: overwritten with untainted value
	}
}

func applyTaintStateEffects(inv jimple.InvokeExpr, sums []*TaintSummary, taint map[string]bool) {
	for _, sum := range sums {
		if sum == nil {
			continue
		}
		for tOut := 0; tOut < sum.Inputs; tOut++ {
			if sum.StateFrom[tOut] == 0 {
				continue
			}
			outLocal := tokenLocal(inv, tOut)
			if outLocal == "" || taint[outLocal] {
				continue
			}
			for tIn := 0; tIn < sum.Inputs; tIn++ {
				if sum.StateFrom[tOut]&bit(tIn) != 0 {
					if l := tokenLocal(inv, tIn); l != "" && taint[l] {
						taint[outLocal] = true
						break
					}
				}
			}
		}
	}
}

func valueTainted(v jimple.Value, at int, taint map[string]bool, opts TaintOptions) bool {
	switch v := v.(type) {
	case jimple.Local:
		return taint[v.Name]
	case jimple.CastExpr:
		return valueTainted(v.V, at, taint, opts)
	case jimple.FieldRef:
		// Field load from a tainted object yields taint.
		return v.Base != "" && taint[v.Base]
	case jimple.InvokeExpr:
		if opts.CalleeSummaries != nil {
			if sums := opts.CalleeSummaries(at); len(sums) > 0 {
				// Summarized callees: the result is tainted exactly when
				// the callee derives its return from a tainted binding.
				for _, sum := range sums {
					if sum == nil {
						continue
					}
					for t := 0; t < sum.Inputs; t++ {
						if sum.RetFrom&bit(t) != 0 {
							if l := tokenLocal(v, t); l != "" && taint[l] {
								return true
							}
						}
					}
				}
				return false
			}
		}
		if opts.TaintThroughReceiver && v.Base != "" && taint[v.Base] {
			return true
		}
		if opts.TaintThroughArgs {
			for _, a := range v.Args {
				if valueTainted(a, at, taint, opts) {
					return true
				}
			}
		}
		return false
	case jimple.BinExpr:
		return valueTainted(v.L, at, taint, opts) || valueTainted(v.R, at, taint, opts)
	case jimple.NegExpr:
		return valueTainted(v.V, at, taint, opts)
	case jimple.InstanceOfExpr:
		return valueTainted(v.V, at, taint, opts)
	default:
		return false
	}
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// AllocSitesOf chases the definition chain of local at stmt backward
// through copies and casts to the allocation or call sites that produce
// the object — the "backward propagation until reaching the call site of
// creating the instance" step of paper §4.4.1. It returns the statement
// indexes of the originating definitions (NewExpr, InvokeExpr, ParamRef,
// FieldRef or CaughtExRef right-hand sides), sorted.
func AllocSitesOf(rd *ReachDefs, stmt int, local string) []int {
	type visit struct {
		at int
		l  string
	}
	seen := make(map[visit]bool)
	var out []int
	outSet := make(map[int]bool)
	var walk func(at int, l string)
	walk = func(at int, l string) {
		key := visit{at, l}
		if seen[key] {
			return
		}
		seen[key] = true
		for _, d := range rd.DefsReaching(at, l) {
			a, ok := rd.g.Method.Body[d].(*jimple.AssignStmt)
			if !ok {
				continue
			}
			switch rhs := a.RHS.(type) {
			case jimple.Local:
				walk(d, rhs.Name)
			case jimple.CastExpr:
				if inner, isLocal := rhs.V.(jimple.Local); isLocal {
					walk(d, inner.Name)
				} else if !outSet[d] {
					outSet[d] = true
					out = append(out, d)
				}
			default:
				if !outSet[d] {
					outSet[d] = true
					out = append(out, d)
				}
			}
		}
	}
	walk(stmt, local)
	sort.Ints(out)
	return out
}

// ObjectFlow combines the backward and forward halves of NChecker's
// config-API discovery: starting from the use of local at stmt, it finds
// the object's allocation sites, then taints forward from each and returns
// every invocation statement whose receiver is an alias of the object,
// with the method invoked. The result is sorted by statement index.
type ObjectCall struct {
	Stmt   int
	Callee jimple.Sig
	// Args carries pre-evaluated constant arguments when the call was
	// discovered through a callee's summary — the caller's ConstProp
	// cannot see into another method's body. nil for calls found in the
	// analyzed method itself (callers evaluate those locally).
	Args []SummaryArg
}

// CallsOnObject returns all calls whose receiver aliases the object that
// local denotes at stmt.
func CallsOnObject(g *cfg.Graph, rd *ReachDefs, stmt int, local string) []ObjectCall {
	allocs := AllocSitesOf(rd, stmt, local)
	sources := make(map[int][]string)
	for _, d := range allocs {
		if def := rd.DefOfStmt(d); def != "" {
			sources[d] = append(sources[d], def)
		}
	}
	// The object may also be directly the local with no visible alloc
	// (e.g. parameter identity not modeled); fall back to tainting the
	// local at its first reaching def or method entry.
	if len(sources) == 0 {
		sources[0] = []string{local}
	}
	taint := ForwardTaint(g, sources, DefaultTaintOptions())
	var out []ObjectCall
	for i, s := range g.Method.Body {
		inv, ok := jimple.InvokeOf(s)
		if !ok || inv.Base == "" {
			continue
		}
		// Receiver tainted before the call executes — but the def site
		// itself has taint only after, so also accept the def statement.
		if taint.TaintedAt(i, inv.Base) || sourcesContain(sources, i, inv.Base) {
			out = append(out, ObjectCall{Stmt: i, Callee: inv.Callee})
		}
	}
	return out
}

// CallsOnObjectInter is CallsOnObject with interprocedural vision: calls
// the object's aliases receive inside summarized callees — passed as
// receiver or argument (CallsOn), or made on the object inside the
// factory that produced it (CallsOnRet) — are reported at the caller-side
// site, with the callee-context constant arguments attached. A nil
// resolver degrades to CallsOnObject.
func CallsOnObjectInter(g *cfg.Graph, rd *ReachDefs, stmt int, local string, resolve SummaryResolver) []ObjectCall {
	if resolve == nil {
		return CallsOnObject(g, rd, stmt, local)
	}
	allocs := AllocSitesOf(rd, stmt, local)
	sources := make(map[int][]string)
	for _, d := range allocs {
		if def := rd.DefOfStmt(d); def != "" {
			sources[d] = append(sources[d], def)
		}
	}
	if len(sources) == 0 {
		sources[0] = []string{local}
	}
	opts := DefaultTaintOptions()
	opts.CalleeSummaries = resolve
	taint := ForwardTaint(g, sources, opts)
	isAlias := func(i int, name string) bool {
		return taint.TaintedAt(i, name) || sourcesContain(sources, i, name)
	}
	var out []ObjectCall
	for i, s := range g.Method.Body {
		inv, ok := jimple.InvokeOf(s)
		if !ok {
			continue
		}
		if inv.Base != "" && isAlias(i, inv.Base) {
			out = append(out, ObjectCall{Stmt: i, Callee: inv.Callee})
		}
		for _, sum := range resolve(i) {
			if sum == nil {
				continue
			}
			for _, t := range BoundTokens(inv, sum, func(name string) bool { return isAlias(i, name) }) {
				for _, sc := range sum.CallsOn[t] {
					out = append(out, ObjectCall{Stmt: i, Callee: sc.Callee, Args: sc.Args})
				}
			}
		}
	}
	// Factory allocations: calls made inside a summarized producer on the
	// object it returned.
	for _, d := range allocs {
		inv, ok := jimple.InvokeOf(g.Method.Body[d])
		if !ok {
			continue
		}
		for _, sum := range resolve(d) {
			if sum == nil {
				continue
			}
			for _, sc := range sum.CallsOnRet {
				out = append(out, ObjectCall{Stmt: d, Callee: sc.Callee, Args: sc.Args})
			}
			for t := 0; t < sum.Inputs; t++ {
				if sum.RetFrom&bit(t) != 0 && tokenLocal(inv, t) != "" {
					for _, sc := range sum.CallsOn[t] {
						out = append(out, ObjectCall{Stmt: d, Callee: sc.Callee, Args: sc.Args})
					}
				}
			}
		}
	}
	return dedupeObjectCalls(out)
}

// dedupeObjectCalls sorts by (statement, callee key, args) and removes
// duplicates, keeping caller-side entries (nil Args) distinct from
// summary-mapped ones.
func dedupeObjectCalls(calls []ObjectCall) []ObjectCall {
	if len(calls) == 0 {
		return nil
	}
	// Render each callee key once up front; sorting and dedup below compare
	// the cached strings instead of re-rendering per comparison.
	keys := make([]string, len(calls))
	for i := range calls {
		keys[i] = calls[i].Callee.Key()
	}
	sort.Stable(&objectCallSorter{calls: calls, keys: keys})
	out := calls[:1]
	last := 0
	for i := 1; i < len(calls); i++ {
		prev := &out[len(out)-1]
		cur := &calls[i]
		if prev.Stmt == cur.Stmt && keys[last] == keys[i] && sameArgs(prev.Args, cur.Args) {
			continue
		}
		out = append(out, *cur)
		last = i
	}
	return out
}

type objectCallSorter struct {
	calls []ObjectCall
	keys  []string
}

func (s *objectCallSorter) Len() int { return len(s.calls) }

func (s *objectCallSorter) Swap(i, j int) {
	s.calls[i], s.calls[j] = s.calls[j], s.calls[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

func (s *objectCallSorter) Less(i, j int) bool {
	a, b := &s.calls[i], &s.calls[j]
	if a.Stmt != b.Stmt {
		return a.Stmt < b.Stmt
	}
	if s.keys[i] != s.keys[j] {
		return s.keys[i] < s.keys[j]
	}
	if len(a.Args) != len(b.Args) {
		return len(a.Args) < len(b.Args)
	}
	for k := range a.Args {
		if a.Args[k] != b.Args[k] {
			if a.Args[k].Known != b.Args[k].Known {
				return !a.Args[k].Known
			}
			return a.Args[k].V < b.Args[k].V
		}
	}
	return false
}

func sourcesContain(sources map[int][]string, stmt int, local string) bool {
	for _, l := range sources[stmt] {
		if l == local {
			return true
		}
	}
	return false
}
