package jimple

// Interner deduplicates the derived identifier strings the analyses key
// their maps by — Sig keys and subsignature keys — within one scope (a
// hierarchy or call-graph build). The same signature is referenced from
// many statements; without interning every reference re-renders and
// re-allocates the key string. An Interner renders into a reused buffer
// and allocates each distinct key exactly once.
//
// An Interner is not safe for concurrent use: scope one per build stage
// (the stages that construct graphs are single-threaded) and drop it when
// the build finishes so the scan retains only the strings still
// referenced by the built structures.
type Interner struct {
	m   map[string]string
	buf []byte
}

// NewInterner returns an empty Interner.
func NewInterner() *Interner {
	return &Interner{m: make(map[string]string, 256)}
}

// intern returns the canonical copy of b's contents. The map lookup on
// string(b) does not allocate (the compiler elides the conversion); only
// a first sighting copies the bytes into a new string.
func (t *Interner) intern(b []byte) string {
	if s, ok := t.m[string(b)]; ok {
		return s
	}
	s := string(b)
	t.m[s] = s
	return s
}

// SigKey returns the interned canonical key of s (identical to s.Key()).
func (t *Interner) SigKey(s Sig) string {
	t.buf = s.AppendKey(t.buf[:0])
	return t.intern(t.buf)
}

// SubSigKey returns the interned subsignature key of s (identical to
// s.SubSigKey()).
func (t *Interner) SubSigKey(s Sig) string {
	t.buf = s.AppendSubSigKey(t.buf[:0])
	return t.intern(t.buf)
}
