package jimple

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// ClassWriter is the sink the printer streams into. Both *strings.Builder
// and *bufio.Writer satisfy it, so callers that only need the printed
// bytes transiently (content hashing) can stream them through a buffered
// writer instead of materializing a throwaway string per class.
type ClassWriter interface {
	io.Writer
	WriteString(s string) (int, error)
	WriteByte(c byte) error
}

// Fprint renders the program in the textual assembly form accepted by
// Parse. The rendering is deterministic: classes sorted by name, members
// in declaration order.
func Fprint(b ClassWriter, p *Program) {
	for i, c := range p.Classes() {
		if i > 0 {
			b.WriteByte('\n')
		}
		printClass(b, c)
	}
}

// Print renders the program as a string.
func Print(p *Program) string {
	var b strings.Builder
	Fprint(&b, p)
	return b.String()
}

// PrintClass renders a single class.
func PrintClass(c *Class) string {
	var b strings.Builder
	printClass(&b, c)
	return b.String()
}

// FprintClass streams the rendering of a single class into w, emitting
// exactly the bytes PrintClass returns.
func FprintClass(w ClassWriter, c *Class) { printClass(w, c) }

func printClass(b ClassWriter, c *Class) {
	if c.IsIface {
		b.WriteString("interface ")
	} else {
		if c.Abstract {
			b.WriteString("abstract ")
		}
		b.WriteString("class ")
	}
	b.WriteString(c.Name)
	if c.Super != "" {
		b.WriteString(" extends ")
		b.WriteString(c.Super)
	}
	if len(c.Interfaces) > 0 {
		b.WriteString(" implements ")
		for i, ifc := range c.Interfaces {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ifc)
		}
	}
	b.WriteString(" {\n")
	for _, f := range c.Fields {
		b.WriteString("  field ")
		if f.Static {
			b.WriteString("static ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type)
		b.WriteByte('\n')
	}
	for _, m := range c.Methods {
		printMethod(b, m)
	}
	b.WriteString("}\n")
}

func printMethod(b ClassWriter, m *Method) {
	b.WriteString("  method ")
	if m.Static {
		b.WriteString("static ")
	}
	if m.Abstract {
		b.WriteString("abstract ")
	}
	b.WriteString(m.Sig.Name)
	b.WriteByte('(')
	for i, p := range m.Sig.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	b.WriteByte(')')
	b.WriteString(m.Sig.Ret)
	if !m.HasBody() {
		b.WriteByte('\n')
		return
	}
	b.WriteString(" {\n")
	for _, l := range m.Locals {
		b.WriteString("    local ")
		b.WriteString(l.Name)
		b.WriteByte(' ')
		b.WriteString(l.Type)
		b.WriteByte('\n')
	}
	labels := collectLabels(m)
	writeLabel := func(lbl int) {
		b.WriteString("    L")
		writeInt(b, int64(lbl))
		b.WriteString(":\n")
	}
	for i, s := range m.Body {
		if lbl, ok := labels[i]; ok {
			writeLabel(lbl)
		}
		b.WriteString("    ")
		writeStmt(b, s, labels)
		b.WriteByte('\n')
	}
	// A label may anchor one past the last statement only via traps ends;
	// trap ends are exclusive and may equal len(Body).
	if lbl, ok := labels[len(m.Body)]; ok {
		writeLabel(lbl)
	}
	for _, t := range m.Traps {
		b.WriteString("    trap L")
		writeInt(b, int64(labels[t.Begin]))
		b.WriteString(" L")
		writeInt(b, int64(labels[t.End]))
		b.WriteString(" L")
		writeInt(b, int64(labels[t.Handler]))
		b.WriteByte(' ')
		b.WriteString(t.Exception)
		b.WriteByte('\n')
	}
	b.WriteString("  }\n")
}

// writeInt writes the decimal rendering of v without going through fmt.
func writeInt(b ClassWriter, v int64) {
	var buf [20]byte
	b.Write(strconv.AppendInt(buf[:0], v, 10))
}

// collectLabels assigns a label number to every statement index that is a
// branch target or trap boundary, in increasing index order.
func collectLabels(m *Method) map[int]int {
	idxSet := make(map[int]bool)
	var scratch []int
	for _, s := range m.Body {
		for _, t := range BranchTargets(scratch[:0], s) {
			idxSet[t] = true
		}
	}
	for _, t := range m.Traps {
		idxSet[t.Begin] = true
		idxSet[t.End] = true
		idxSet[t.Handler] = true
	}
	idxs := make([]int, 0, len(idxSet))
	for i := range idxSet {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	labels := make(map[int]int, len(idxs))
	for n, i := range idxs {
		labels[i] = n
	}
	return labels
}

func writeStmt(b ClassWriter, s Stmt, labels map[int]int) {
	switch s := s.(type) {
	case *AssignStmt:
		writeLValue(b, s.LHS)
		b.WriteString(" = ")
		writeValue(b, s.RHS)
	case *InvokeStmt:
		writeInvoke(b, s.Call)
	case *IfStmt:
		b.WriteString("if ")
		writeValue(b, s.Cond)
		b.WriteString(" goto L")
		writeInt(b, int64(labels[s.Target]))
	case *GotoStmt:
		b.WriteString("goto L")
		writeInt(b, int64(labels[s.Target]))
	case *ReturnStmt:
		if s.V == nil {
			b.WriteString("return")
			return
		}
		b.WriteString("return ")
		writeAtom(b, s.V)
	case *ThrowStmt:
		b.WriteString("throw ")
		writeAtom(b, s.V)
	case *NopStmt:
		b.WriteString("nop")
	default:
		b.WriteByte('?')
	}
}

func writeLValue(b ClassWriter, v LValue) {
	switch v := v.(type) {
	case Local:
		b.WriteString(v.Name)
	case FieldRef:
		writeFieldRef(b, v)
	default:
		b.WriteByte('?')
	}
}

func writeFieldRef(b ClassWriter, f FieldRef) {
	if f.Base == "" {
		b.WriteString("sfield(")
	} else {
		b.WriteString("field(")
		b.WriteString(f.Base)
		b.WriteByte(',')
	}
	b.WriteString(f.Class)
	b.WriteByte(',')
	b.WriteString(f.Field)
	b.WriteByte(')')
}

func writeAtom(b ClassWriter, v Value) {
	switch v := v.(type) {
	case Local:
		b.WriteString(v.Name)
	case IntConst:
		writeInt(b, v.V)
	case StrConst:
		b.WriteString(strconv.Quote(v.V))
	case NullConst:
		b.WriteString("null")
	case ParamRef:
		b.WriteString("param ")
		writeInt(b, int64(v.Index))
		b.WriteByte(' ')
		b.WriteString(v.Type)
	case ThisRef:
		b.WriteString("this ")
		b.WriteString(v.Type)
	case CaughtExRef:
		b.WriteString("caught")
	case FieldRef:
		writeFieldRef(b, v)
	default:
		b.WriteByte('?')
		b.WriteString(v.String())
	}
}

func writeValue(b ClassWriter, v Value) {
	switch v := v.(type) {
	case NewExpr:
		b.WriteString("new ")
		b.WriteString(v.Type)
	case InvokeExpr:
		writeInvoke(b, v)
	case BinExpr:
		writeAtom(b, v.L)
		b.WriteByte(' ')
		b.WriteString(v.Op.String())
		b.WriteByte(' ')
		writeAtom(b, v.R)
	case NegExpr:
		b.WriteByte('!')
		writeAtom(b, v.V)
	case CastExpr:
		b.WriteString("cast ")
		b.WriteString(v.Type)
		b.WriteByte(' ')
		writeAtom(b, v.V)
	case InstanceOfExpr:
		b.WriteString("instanceof ")
		b.WriteString(v.Type)
		b.WriteByte(' ')
		writeAtom(b, v.V)
	default:
		writeAtom(b, v)
	}
}

func writeInvoke(b ClassWriter, e InvokeExpr) {
	b.WriteString(e.Kind.String())
	b.WriteByte(' ')
	if e.Kind != InvokeStatic {
		b.WriteString(e.Base)
		b.WriteByte(' ')
	}
	// Callee key, streamed piecewise — the rendering matches Sig.Key.
	b.WriteString(e.Callee.Class)
	b.WriteByte('.')
	b.WriteString(e.Callee.Name)
	b.WriteByte('(')
	for i, p := range e.Callee.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	b.WriteByte(')')
	b.WriteString(e.Callee.Ret)
	for _, a := range e.Args {
		b.WriteByte(' ')
		writeAtom(b, a)
	}
}
