package jimple

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Fprint renders the program in the textual assembly form accepted by
// Parse. The rendering is deterministic: classes sorted by name, members
// in declaration order.
func Fprint(b *strings.Builder, p *Program) {
	for i, c := range p.Classes() {
		if i > 0 {
			b.WriteByte('\n')
		}
		printClass(b, c)
	}
}

// Print renders the program as a string.
func Print(p *Program) string {
	var b strings.Builder
	Fprint(&b, p)
	return b.String()
}

// PrintClass renders a single class.
func PrintClass(c *Class) string {
	var b strings.Builder
	printClass(&b, c)
	return b.String()
}

func printClass(b *strings.Builder, c *Class) {
	if c.IsIface {
		b.WriteString("interface ")
	} else {
		if c.Abstract {
			b.WriteString("abstract ")
		}
		b.WriteString("class ")
	}
	b.WriteString(c.Name)
	if c.Super != "" {
		b.WriteString(" extends ")
		b.WriteString(c.Super)
	}
	if len(c.Interfaces) > 0 {
		b.WriteString(" implements ")
		b.WriteString(strings.Join(c.Interfaces, ","))
	}
	b.WriteString(" {\n")
	for _, f := range c.Fields {
		b.WriteString("  field ")
		if f.Static {
			b.WriteString("static ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Type)
		b.WriteByte('\n')
	}
	for _, m := range c.Methods {
		printMethod(b, m)
	}
	b.WriteString("}\n")
}

func printMethod(b *strings.Builder, m *Method) {
	b.WriteString("  method ")
	if m.Static {
		b.WriteString("static ")
	}
	if m.Abstract {
		b.WriteString("abstract ")
	}
	b.WriteString(m.Sig.Name)
	b.WriteByte('(')
	b.WriteString(strings.Join(m.Sig.Params, ","))
	b.WriteByte(')')
	b.WriteString(m.Sig.Ret)
	if !m.HasBody() {
		b.WriteByte('\n')
		return
	}
	b.WriteString(" {\n")
	for _, l := range m.Locals {
		fmt.Fprintf(b, "    local %s %s\n", l.Name, l.Type)
	}
	labels := collectLabels(m)
	for i, s := range m.Body {
		if lbl, ok := labels[i]; ok {
			fmt.Fprintf(b, "    L%d:\n", lbl)
		}
		b.WriteString("    ")
		b.WriteString(formatStmt(s, labels))
		b.WriteByte('\n')
	}
	// A label may anchor one past the last statement only via traps ends;
	// trap ends are exclusive and may equal len(Body).
	if lbl, ok := labels[len(m.Body)]; ok {
		fmt.Fprintf(b, "    L%d:\n", lbl)
	}
	for _, t := range m.Traps {
		fmt.Fprintf(b, "    trap L%d L%d L%d %s\n",
			labels[t.Begin], labels[t.End], labels[t.Handler], t.Exception)
	}
	b.WriteString("  }\n")
}

// collectLabels assigns a label number to every statement index that is a
// branch target or trap boundary, in increasing index order.
func collectLabels(m *Method) map[int]int {
	idxSet := make(map[int]bool)
	var scratch []int
	for _, s := range m.Body {
		for _, t := range BranchTargets(scratch[:0], s) {
			idxSet[t] = true
		}
	}
	for _, t := range m.Traps {
		idxSet[t.Begin] = true
		idxSet[t.End] = true
		idxSet[t.Handler] = true
	}
	idxs := make([]int, 0, len(idxSet))
	for i := range idxSet {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	labels := make(map[int]int, len(idxs))
	for n, i := range idxs {
		labels[i] = n
	}
	return labels
}

func formatStmt(s Stmt, labels map[int]int) string {
	switch s := s.(type) {
	case *AssignStmt:
		return formatLValue(s.LHS) + " = " + formatValue(s.RHS)
	case *InvokeStmt:
		return formatInvoke(s.Call)
	case *IfStmt:
		return fmt.Sprintf("if %s goto L%d", formatValue(s.Cond), labels[s.Target])
	case *GotoStmt:
		return fmt.Sprintf("goto L%d", labels[s.Target])
	case *ReturnStmt:
		if s.V == nil {
			return "return"
		}
		return "return " + formatAtom(s.V)
	case *ThrowStmt:
		return "throw " + formatAtom(s.V)
	case *NopStmt:
		return "nop"
	}
	return "?"
}

func formatLValue(v LValue) string {
	switch v := v.(type) {
	case Local:
		return v.Name
	case FieldRef:
		return formatFieldRef(v)
	}
	return "?"
}

func formatFieldRef(f FieldRef) string {
	if f.Base == "" {
		return fmt.Sprintf("sfield(%s,%s)", f.Class, f.Field)
	}
	return fmt.Sprintf("field(%s,%s,%s)", f.Base, f.Class, f.Field)
}

func formatAtom(v Value) string {
	switch v := v.(type) {
	case Local:
		return v.Name
	case IntConst:
		return strconv.FormatInt(v.V, 10)
	case StrConst:
		return strconv.Quote(v.V)
	case NullConst:
		return "null"
	case ParamRef:
		return fmt.Sprintf("param %d %s", v.Index, v.Type)
	case ThisRef:
		return "this " + v.Type
	case CaughtExRef:
		return "caught"
	case FieldRef:
		return formatFieldRef(v)
	}
	return "?" + v.String()
}

func formatValue(v Value) string {
	switch v := v.(type) {
	case NewExpr:
		return "new " + v.Type
	case InvokeExpr:
		return formatInvoke(v)
	case BinExpr:
		return fmt.Sprintf("%s %s %s", formatAtom(v.L), v.Op.String(), formatAtom(v.R))
	case NegExpr:
		return "!" + formatAtom(v.V)
	case CastExpr:
		return fmt.Sprintf("cast %s %s", v.Type, formatAtom(v.V))
	case InstanceOfExpr:
		return fmt.Sprintf("instanceof %s %s", v.Type, formatAtom(v.V))
	default:
		return formatAtom(v)
	}
}

func formatInvoke(e InvokeExpr) string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	b.WriteByte(' ')
	if e.Kind != InvokeStatic {
		b.WriteString(e.Base)
		b.WriteByte(' ')
	}
	b.WriteString(e.Callee.Key())
	for _, a := range e.Args {
		b.WriteByte(' ')
		b.WriteString(formatAtom(a))
	}
	return b.String()
}
