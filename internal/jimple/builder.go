package jimple

import (
	"fmt"
)

// Label is a forward-referenceable branch target handed out by a
// BodyBuilder. Bind it to the next emitted statement with Bind.
type Label struct {
	id int
}

// BodyBuilder assembles a method body statement by statement, resolving
// labels to statement indexes at Build time. It is the programmatic
// front end used by tests, the synthetic-app corpus generator, and the
// golden apps.
type BodyBuilder struct {
	locals   []LocalDecl
	seen     map[string]bool
	stmts    []Stmt
	traps    []Trap
	nextLbl  int
	bound    map[int]int   // label id -> stmt index
	pending  map[int][]int // label id -> stmt indexes needing patch
	buildErr error
}

// NewBody returns an empty body builder.
func NewBody() *BodyBuilder {
	return &BodyBuilder{
		seen:    make(map[string]bool),
		bound:   make(map[int]int),
		pending: make(map[int][]int),
	}
}

// Local declares a local variable (idempotent for an identical
// redeclaration) and returns a Local value for use in statements.
func (b *BodyBuilder) Local(name, typ string) Local {
	if !b.seen[name] {
		b.seen[name] = true
		b.locals = append(b.locals, LocalDecl{Name: name, Type: typ})
	}
	return Local{Name: name}
}

// NewLabel allocates an unbound label.
func (b *BodyBuilder) NewLabel() *Label {
	b.nextLbl++
	return &Label{id: b.nextLbl}
}

// Bind anchors lbl at the position of the next emitted statement.
func (b *BodyBuilder) Bind(lbl *Label) {
	if _, dup := b.bound[lbl.id]; dup {
		b.fail(fmt.Errorf("label %d bound twice", lbl.id))
		return
	}
	b.bound[lbl.id] = len(b.stmts)
}

func (b *BodyBuilder) fail(err error) {
	if b.buildErr == nil {
		b.buildErr = err
	}
}

func (b *BodyBuilder) emit(s Stmt) int {
	b.stmts = append(b.stmts, s)
	return len(b.stmts) - 1
}

// Assign emits "lhs = rhs".
func (b *BodyBuilder) Assign(lhs LValue, rhs Value) *BodyBuilder {
	b.emit(&AssignStmt{LHS: lhs, RHS: rhs})
	return b
}

// New emits "l = new T" followed by a special-invoke of T's no-arg
// constructor on l, mirroring Jimple's two-step allocation.
func (b *BodyBuilder) New(l Local, typ string) *BodyBuilder {
	b.Assign(l, NewExpr{Type: typ})
	b.emit(&InvokeStmt{Call: InvokeExpr{
		Kind:   InvokeSpecial,
		Base:   l.Name,
		Callee: Sig{Class: typ, Name: "<init>", Ret: TypeVoid},
	}})
	return b
}

// Invoke emits a call for side effects.
func (b *BodyBuilder) Invoke(kind InvokeKind, base string, callee Sig, args ...Value) *BodyBuilder {
	b.emit(&InvokeStmt{Call: InvokeExpr{Kind: kind, Base: base, Callee: callee, Args: args}})
	return b
}

// InvokeAssign emits "l = <call>".
func (b *BodyBuilder) InvokeAssign(l Local, kind InvokeKind, base string, callee Sig, args ...Value) *BodyBuilder {
	b.Assign(l, InvokeExpr{Kind: kind, Base: base, Callee: callee, Args: args})
	return b
}

// If emits a conditional branch to lbl.
func (b *BodyBuilder) If(cond Value, lbl *Label) *BodyBuilder {
	idx := b.emit(&IfStmt{Cond: cond, Target: -1})
	b.pending[lbl.id] = append(b.pending[lbl.id], idx)
	return b
}

// Goto emits an unconditional branch to lbl.
func (b *BodyBuilder) Goto(lbl *Label) *BodyBuilder {
	idx := b.emit(&GotoStmt{Target: -1})
	b.pending[lbl.id] = append(b.pending[lbl.id], idx)
	return b
}

// Return emits a return; v may be nil for void.
func (b *BodyBuilder) Return(v Value) *BodyBuilder {
	b.emit(&ReturnStmt{V: v})
	return b
}

// Throw emits a throw of v.
func (b *BodyBuilder) Throw(v Value) *BodyBuilder {
	b.emit(&ThrowStmt{V: v})
	return b
}

// Nop emits a no-op, useful as an explicit join point.
func (b *BodyBuilder) Nop() *BodyBuilder {
	b.emit(&NopStmt{})
	return b
}

// TrapRegion records an exception handler covering [begin, end) labels
// with the handler at handlerLbl. All three labels must be bound by Build
// time.
func (b *BodyBuilder) TrapRegion(begin, end, handler *Label, exception string) *BodyBuilder {
	// Store label ids negatively offset so Build can distinguish them
	// from resolved indexes; resolution happens in Build.
	b.traps = append(b.traps, Trap{Begin: -begin.id, End: -end.id, Handler: -handler.id, Exception: exception})
	return b
}

// Mark returns the index of the next statement to be emitted. Callers that
// prefer raw indexes over labels (e.g. generated code) can use Mark with
// TrapAt.
func (b *BodyBuilder) Mark() int { return len(b.stmts) }

// TrapAt records an exception handler using raw statement indexes.
func (b *BodyBuilder) TrapAt(begin, end, handler int, exception string) *BodyBuilder {
	b.traps = append(b.traps, Trap{Begin: begin, End: end, Handler: handler, Exception: exception})
	return b
}

// Build finalizes the body into a Method with the given signature.
func (b *BodyBuilder) Build(sig Sig, static bool) (*Method, error) {
	if b.buildErr != nil {
		return nil, b.buildErr
	}
	resolve := func(id int) (int, error) {
		idx, ok := b.bound[id]
		if !ok {
			return 0, fmt.Errorf("label %d used but never bound", id)
		}
		return idx, nil
	}
	for id, sites := range b.pending {
		idx, err := resolve(id)
		if err != nil {
			return nil, err
		}
		if idx >= len(b.stmts) {
			// A label bound past the last statement needs an anchor.
			return nil, fmt.Errorf("label %d bound past the end of the body", id)
		}
		for _, site := range sites {
			switch s := b.stmts[site].(type) {
			case *IfStmt:
				s.Target = idx
			case *GotoStmt:
				s.Target = idx
			default:
				return nil, fmt.Errorf("pending patch at non-branch statement %d", site)
			}
		}
	}
	traps := make([]Trap, len(b.traps))
	for i, t := range b.traps {
		rt := t
		if t.Begin < 0 { // label-based trap: resolve all three
			var err error
			if rt.Begin, err = resolve(-t.Begin); err != nil {
				return nil, err
			}
			if rt.End, err = resolve(-t.End); err != nil {
				return nil, err
			}
			if rt.Handler, err = resolve(-t.Handler); err != nil {
				return nil, err
			}
		}
		traps[i] = rt
	}
	m := &Method{
		Sig:    sig,
		Static: static,
		Locals: b.locals,
		Body:   b.stmts,
		Traps:  traps,
	}
	return m, nil
}

// MustBuild is Build that panics on error; intended for hand-authored
// bodies in tests, goldens and generators where a failure is a programming
// bug.
func (b *BodyBuilder) MustBuild(sig Sig, static bool) *Method {
	m, err := b.Build(sig, static)
	if err != nil {
		panic(fmt.Sprintf("jimple: MustBuild %s: %v", sig.Key(), err))
	}
	return m
}
