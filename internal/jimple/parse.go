package jimple

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual assembly form produced by Print and returns the
// program it describes. The format is line-oriented:
//
//	class com.app.Main extends android.app.Activity implements a.B {
//	  field mClient com.http.BasicHttpClient
//	  method onClick(android.view.View)void {
//	    local c com.http.BasicHttpClient
//	    L0:
//	    c = new com.http.BasicHttpClient
//	    specialinvoke c com.http.BasicHttpClient.<init>()void
//	    if c == null goto L1
//	    return
//	    L1:
//	    return
//	    trap L0 L1 L1 java.io.IOException
//	  }
//	}
//
// Identifiers "param", "this", "caught" and "null" are reserved and may
// not be used as local names.
func Parse(src string) (*Program, error) {
	p := &parser{lines: splitLines(src), prog: NewProgram()}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.prog, nil
}

// MustParse is Parse that panics on error; for hand-authored sources in
// tests and goldens.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic("jimple: MustParse: " + err.Error())
	}
	return prog
}

type srcLine struct {
	num    int
	tokens []string
}

func splitLines(src string) []srcLine {
	raw := strings.Split(src, "\n")
	out := make([]srcLine, 0, len(raw))
	for i, l := range raw {
		toks, _ := tokenize(l)
		if len(toks) == 0 {
			continue
		}
		out = append(out, srcLine{num: i + 1, tokens: toks})
	}
	return out
}

// tokenize splits a line on whitespace, keeping double-quoted strings
// (with Go escaping) as single tokens and stripping "//" comments.
func tokenize(line string) ([]string, error) {
	var toks []string
	i, n := 0, len(line)
	for i < n {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '/' && i+1 < n && line[i+1] == '/':
			return toks, nil
		case c == '"':
			j := i + 1
			for j < n {
				if line[j] == '\\' {
					j += 2
					continue
				}
				if line[j] == '"' {
					break
				}
				j++
			}
			if j >= n {
				return toks, fmt.Errorf("unterminated string")
			}
			toks = append(toks, line[i:j+1])
			i = j + 1
		default:
			j := i
			for j < n && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' {
				j++
			}
			toks = append(toks, line[i:j])
			i = j
		}
	}
	return toks, nil
}

type parser struct {
	lines []srcLine
	pos   int
	prog  *Program
}

func (p *parser) errf(ln srcLine, format string, args ...any) error {
	return fmt.Errorf("line %d: %s", ln.num, fmt.Sprintf(format, args...))
}

func (p *parser) run() error {
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		switch ln.tokens[0] {
		case "class", "abstract", "interface":
			if err := p.parseClass(); err != nil {
				return err
			}
		default:
			return p.errf(ln, "expected class declaration, got %q", ln.tokens[0])
		}
	}
	return nil
}

func (p *parser) parseClass() error {
	ln := p.lines[p.pos]
	toks := ln.tokens
	c := &Class{}
	i := 0
	if toks[i] == "abstract" {
		c.Abstract = true
		i++
	}
	switch toks[i] {
	case "class":
	case "interface":
		c.IsIface = true
	default:
		return p.errf(ln, "expected class/interface, got %q", toks[i])
	}
	i++
	if i >= len(toks) {
		return p.errf(ln, "missing class name")
	}
	c.Name = toks[i]
	i++
	for i < len(toks) {
		switch toks[i] {
		case "extends":
			if i+1 >= len(toks) {
				return p.errf(ln, "extends without a type")
			}
			c.Super = toks[i+1]
			i += 2
		case "implements":
			if i+1 >= len(toks) {
				return p.errf(ln, "implements without a list")
			}
			c.Interfaces = strings.Split(toks[i+1], ",")
			i += 2
		case "{":
			i++
		default:
			return p.errf(ln, "unexpected token %q in class header", toks[i])
		}
	}
	p.pos++
	for p.pos < len(p.lines) {
		ln = p.lines[p.pos]
		switch ln.tokens[0] {
		case "}":
			p.pos++
			p.prog.AddClass(c)
			return nil
		case "field":
			f, err := p.parseField(ln)
			if err != nil {
				return err
			}
			c.Fields = append(c.Fields, f)
			p.pos++
		case "method":
			m, err := p.parseMethod(c.Name)
			if err != nil {
				return err
			}
			c.Methods = append(c.Methods, m)
		default:
			return p.errf(ln, "unexpected token %q in class body", ln.tokens[0])
		}
	}
	return p.errf(ln, "class %s not closed", c.Name)
}

func (p *parser) parseField(ln srcLine) (*Field, error) {
	toks := ln.tokens[1:]
	f := &Field{}
	if len(toks) > 0 && toks[0] == "static" {
		f.Static = true
		toks = toks[1:]
	}
	if len(toks) != 2 {
		return nil, p.errf(ln, "field wants NAME TYPE")
	}
	f.Name, f.Type = toks[0], toks[1]
	return f, nil
}

func (p *parser) parseMethod(class string) (*Method, error) {
	ln := p.lines[p.pos]
	toks := ln.tokens[1:]
	m := &Method{}
	for len(toks) > 0 {
		if toks[0] == "static" {
			m.Static = true
			toks = toks[1:]
			continue
		}
		if toks[0] == "abstract" {
			m.Abstract = true
			toks = toks[1:]
			continue
		}
		break
	}
	if len(toks) == 0 {
		return nil, p.errf(ln, "method wants a signature")
	}
	sig, err := ParseSigKey(class + "." + toks[0])
	if err != nil {
		return nil, p.errf(ln, "bad method signature %q: %v", toks[0], err)
	}
	m.Sig = sig
	hasBody := len(toks) > 1 && toks[1] == "{"
	p.pos++
	if !hasBody {
		if !m.Abstract {
			m.Abstract = true // signature-only methods are treated as abstract stubs
		}
		return m, nil
	}
	return m, p.parseBody(m)
}

type pendingBranch struct {
	stmt  int
	label string
	ln    srcLine
}

type pendingTrap struct {
	begin, end, handler string
	exception           string
	ln                  srcLine
}

func (p *parser) parseBody(m *Method) error {
	labels := make(map[string]int)
	var branches []pendingBranch
	var traps []pendingTrap
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		toks := ln.tokens
		head := toks[0]
		switch {
		case head == "}":
			p.pos++
			if m.Body == nil {
				// A concrete method with zero statements is normalized to
				// an abstract stub, matching the signature-only form: the
				// printer emits both without a body block, so the print →
				// parse round trip stays a fixpoint (fuzz-found asymmetry).
				m.Abstract = true
				m.Locals = nil
				return nil
			}
			return p.finishBody(m, labels, branches, traps)
		case head == "local":
			if len(toks) != 3 {
				return p.errf(ln, "local wants NAME TYPE")
			}
			if isReserved(toks[1]) {
				return p.errf(ln, "local name %q is reserved", toks[1])
			}
			m.Locals = append(m.Locals, LocalDecl{Name: toks[1], Type: toks[2]})
		case strings.HasSuffix(head, ":") && len(toks) == 1:
			name := strings.TrimSuffix(head, ":")
			if _, dup := labels[name]; dup {
				return p.errf(ln, "label %s defined twice", name)
			}
			labels[name] = len(m.Body)
		case head == "trap":
			if len(toks) != 5 {
				return p.errf(ln, "trap wants Lbegin Lend Lhandler ExceptionType")
			}
			traps = append(traps, pendingTrap{begin: toks[1], end: toks[2], handler: toks[3], exception: toks[4], ln: ln})
		default:
			s, branchLabel, err := p.parseStmt(ln)
			if err != nil {
				return err
			}
			if branchLabel != "" {
				branches = append(branches, pendingBranch{stmt: len(m.Body), label: branchLabel, ln: ln})
			}
			m.Body = append(m.Body, s)
		}
		p.pos++
	}
	return fmt.Errorf("method %s body not closed", m.Sig.Key())
}

func (p *parser) finishBody(m *Method, labels map[string]int, branches []pendingBranch, traps []pendingTrap) error {
	resolve := func(name string, ln srcLine) (int, error) {
		idx, ok := labels[name]
		if !ok {
			return 0, p.errf(ln, "undefined label %s", name)
		}
		return idx, nil
	}
	for _, br := range branches {
		idx, err := resolve(br.label, br.ln)
		if err != nil {
			return err
		}
		switch s := m.Body[br.stmt].(type) {
		case *IfStmt:
			s.Target = idx
		case *GotoStmt:
			s.Target = idx
		}
	}
	for _, t := range traps {
		b, err := resolve(t.begin, t.ln)
		if err != nil {
			return err
		}
		e, err := resolve(t.end, t.ln)
		if err != nil {
			return err
		}
		h, err := resolve(t.handler, t.ln)
		if err != nil {
			return err
		}
		m.Traps = append(m.Traps, Trap{Begin: b, End: e, Handler: h, Exception: t.exception})
	}
	return nil
}

func isReserved(name string) bool {
	switch name {
	case "param", "this", "caught", "null", "new", "cast", "instanceof",
		"if", "goto", "return", "throw", "nop", "trap", "local",
		"virtualinvoke", "interfaceinvoke", "specialinvoke", "staticinvoke":
		return true
	}
	return false
}

// parseStmt parses one statement line. If the statement is a branch, the
// returned label names its target (to be patched later).
func (p *parser) parseStmt(ln srcLine) (Stmt, string, error) {
	toks := ln.tokens
	switch toks[0] {
	case "nop":
		return &NopStmt{}, "", nil
	case "goto":
		if len(toks) != 2 {
			return nil, "", p.errf(ln, "goto wants a label")
		}
		return &GotoStmt{Target: -1}, toks[1], nil
	case "return":
		if len(toks) == 1 {
			return &ReturnStmt{}, "", nil
		}
		v, rest, err := p.parseAtom(ln, toks[1:])
		if err != nil {
			return nil, "", err
		}
		if len(rest) != 0 {
			return nil, "", p.errf(ln, "trailing tokens after return value")
		}
		return &ReturnStmt{V: v}, "", nil
	case "throw":
		v, rest, err := p.parseAtom(ln, toks[1:])
		if err != nil {
			return nil, "", err
		}
		if len(rest) != 0 {
			return nil, "", p.errf(ln, "trailing tokens after throw value")
		}
		return &ThrowStmt{V: v}, "", nil
	case "if":
		// if <cond...> goto Lx ; cond is atom | !atom | atom OP atom
		if len(toks) < 4 {
			return nil, "", p.errf(ln, "malformed if")
		}
		gotoIdx := -1
		for i := len(toks) - 2; i >= 1; i-- {
			if toks[i] == "goto" {
				gotoIdx = i
				break
			}
		}
		if gotoIdx < 0 || gotoIdx != len(toks)-2 {
			return nil, "", p.errf(ln, "if wants trailing 'goto L'")
		}
		cond, err := p.parseCond(ln, toks[1:gotoIdx])
		if err != nil {
			return nil, "", err
		}
		return &IfStmt{Cond: cond, Target: -1}, toks[len(toks)-1], nil
	case "virtualinvoke", "interfaceinvoke", "specialinvoke", "staticinvoke":
		inv, rest, err := p.parseInvoke(ln, toks)
		if err != nil {
			return nil, "", err
		}
		if len(rest) != 0 {
			return nil, "", p.errf(ln, "trailing tokens after invoke")
		}
		return &InvokeStmt{Call: inv}, "", nil
	}
	// Assignment: LHS = VALUE
	if len(toks) >= 3 && toks[1] == "=" {
		lhs, err := p.parseLValue(ln, toks[0])
		if err != nil {
			return nil, "", err
		}
		rhs, err := p.parseValue(ln, toks[2:])
		if err != nil {
			return nil, "", err
		}
		return &AssignStmt{LHS: lhs, RHS: rhs}, "", nil
	}
	return nil, "", p.errf(ln, "unrecognized statement %q", strings.Join(toks, " "))
}

func (p *parser) parseLValue(ln srcLine, tok string) (LValue, error) {
	if strings.HasPrefix(tok, "field(") || strings.HasPrefix(tok, "sfield(") {
		v, _, err := p.parseAtom(ln, []string{tok})
		if err != nil {
			return nil, err
		}
		return v.(FieldRef), nil
	}
	if !isIdent(tok) {
		return nil, p.errf(ln, "bad assignment target %q", tok)
	}
	return Local{Name: tok}, nil
}

func isIdent(tok string) bool {
	if tok == "" || isReserved(tok) {
		return false
	}
	c := tok[0]
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// parseAtom consumes one atom from toks and returns the remainder.
func (p *parser) parseAtom(ln srcLine, toks []string) (Value, []string, error) {
	if len(toks) == 0 {
		return nil, nil, p.errf(ln, "expected a value")
	}
	tok := toks[0]
	rest := toks[1:]
	switch {
	case tok == "null":
		return NullConst{}, rest, nil
	case tok == "caught":
		return CaughtExRef{}, rest, nil
	case tok == "param":
		if len(rest) < 2 {
			return nil, nil, p.errf(ln, "param wants INDEX TYPE")
		}
		idx, err := strconv.Atoi(rest[0])
		if err != nil {
			return nil, nil, p.errf(ln, "bad param index %q", rest[0])
		}
		return ParamRef{Index: idx, Type: rest[1]}, rest[2:], nil
	case tok == "this":
		if len(rest) < 1 {
			return nil, nil, p.errf(ln, "this wants TYPE")
		}
		return ThisRef{Type: rest[0]}, rest[1:], nil
	case strings.HasPrefix(tok, "\""):
		s, err := strconv.Unquote(tok)
		if err != nil {
			return nil, nil, p.errf(ln, "bad string literal %s: %v", tok, err)
		}
		return StrConst{V: s}, rest, nil
	case strings.HasPrefix(tok, "field(") && strings.HasSuffix(tok, ")"):
		parts := strings.Split(tok[len("field("):len(tok)-1], ",")
		if len(parts) != 3 {
			return nil, nil, p.errf(ln, "field() wants (base,class,name)")
		}
		return FieldRef{Base: parts[0], Class: parts[1], Field: parts[2]}, rest, nil
	case strings.HasPrefix(tok, "sfield(") && strings.HasSuffix(tok, ")"):
		parts := strings.Split(tok[len("sfield("):len(tok)-1], ",")
		if len(parts) != 2 {
			return nil, nil, p.errf(ln, "sfield() wants (class,name)")
		}
		return FieldRef{Class: parts[0], Field: parts[1]}, rest, nil
	}
	if v, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return IntConst{V: v}, rest, nil
	}
	if isIdent(tok) {
		return Local{Name: tok}, rest, nil
	}
	return nil, nil, p.errf(ln, "unrecognized value token %q", tok)
}

var opByName = map[string]BinOp{
	"==": OpEQ, "!=": OpNE, "<": OpLT, "<=": OpLE, ">": OpGT, ">=": OpGE,
	"+": OpAdd, "-": OpSub, "*": OpMul, "/": OpDiv, "%": OpRem,
	"&": OpAnd, "|": OpOr, "^": OpXor,
}

func (p *parser) parseCond(ln srcLine, toks []string) (Value, error) {
	v, err := p.parseValue(ln, toks)
	if err != nil {
		return nil, err
	}
	return v, nil
}

// parseValue parses a full RHS expression, consuming all of toks.
func (p *parser) parseValue(ln srcLine, toks []string) (Value, error) {
	if len(toks) == 0 {
		return nil, p.errf(ln, "expected an expression")
	}
	switch toks[0] {
	case "new":
		if len(toks) != 2 {
			return nil, p.errf(ln, "new wants TYPE")
		}
		return NewExpr{Type: toks[1]}, nil
	case "cast":
		if len(toks) < 3 {
			return nil, p.errf(ln, "cast wants TYPE VALUE")
		}
		v, rest, err := p.parseAtom(ln, toks[2:])
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, p.errf(ln, "trailing tokens after cast")
		}
		return CastExpr{Type: toks[1], V: v}, nil
	case "instanceof":
		if len(toks) < 3 {
			return nil, p.errf(ln, "instanceof wants TYPE VALUE")
		}
		v, rest, err := p.parseAtom(ln, toks[2:])
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, p.errf(ln, "trailing tokens after instanceof")
		}
		return InstanceOfExpr{Type: toks[1], V: v}, nil
	case "virtualinvoke", "interfaceinvoke", "specialinvoke", "staticinvoke":
		inv, rest, err := p.parseInvoke(ln, toks)
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, p.errf(ln, "trailing tokens after invoke")
		}
		return inv, nil
	}
	if strings.HasPrefix(toks[0], "!") && len(toks[0]) > 1 {
		inner, rest, err := p.parseAtom(ln, append([]string{toks[0][1:]}, toks[1:]...))
		if err != nil {
			return nil, err
		}
		if len(rest) != 0 {
			return nil, p.errf(ln, "trailing tokens after negation")
		}
		return NegExpr{V: inner}, nil
	}
	// atom, or atom OP atom
	l, rest, err := p.parseAtom(ln, toks)
	if err != nil {
		return nil, err
	}
	if len(rest) == 0 {
		return l, nil
	}
	op, ok := opByName[rest[0]]
	if !ok {
		return nil, p.errf(ln, "expected an operator, got %q", rest[0])
	}
	r, rest2, err := p.parseAtom(ln, rest[1:])
	if err != nil {
		return nil, err
	}
	if len(rest2) != 0 {
		return nil, p.errf(ln, "trailing tokens after binary expression")
	}
	return BinExpr{Op: op, L: l, R: r}, nil
}

func (p *parser) parseInvoke(ln srcLine, toks []string) (InvokeExpr, []string, error) {
	var kind InvokeKind
	switch toks[0] {
	case "virtualinvoke":
		kind = InvokeVirtual
	case "interfaceinvoke":
		kind = InvokeInterface
	case "specialinvoke":
		kind = InvokeSpecial
	case "staticinvoke":
		kind = InvokeStatic
	}
	toks = toks[1:]
	base := ""
	if kind != InvokeStatic {
		if len(toks) < 1 {
			return InvokeExpr{}, nil, p.errf(ln, "invoke wants a receiver")
		}
		base = toks[0]
		toks = toks[1:]
	}
	if len(toks) < 1 {
		return InvokeExpr{}, nil, p.errf(ln, "invoke wants a signature")
	}
	sig, err := ParseSigKey(toks[0])
	if err != nil {
		return InvokeExpr{}, nil, p.errf(ln, "bad invoke signature: %v", err)
	}
	toks = toks[1:]
	var args []Value
	for len(args) < len(sig.Params) {
		var a Value
		a, toks, err = p.parseAtom(ln, toks)
		if err != nil {
			return InvokeExpr{}, nil, err
		}
		args = append(args, a)
	}
	return InvokeExpr{Kind: kind, Base: base, Callee: sig, Args: args}, toks, nil
}
