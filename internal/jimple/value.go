package jimple

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is an IR expression: anything that can appear on the right-hand
// side of an assignment, as a call argument, or as a branch condition.
type Value interface {
	valueNode()
	String() string
}

// LValue is a Value that may also appear on the left-hand side of an
// assignment: a local or a field reference.
type LValue interface {
	Value
	lvalueNode()
}

// Local is a use of (or assignment to) a method-local variable.
type Local struct {
	Name string
}

func (Local) valueNode()       {}
func (Local) lvalueNode()      {}
func (l Local) String() string { return l.Name }

// IntConst is an integer (or boolean: 0/1) constant.
type IntConst struct {
	V int64
}

func (IntConst) valueNode()       {}
func (c IntConst) String() string { return strconv.FormatInt(c.V, 10) }

// StrConst is a string constant.
type StrConst struct {
	V string
}

func (StrConst) valueNode()       {}
func (c StrConst) String() string { return strconv.Quote(c.V) }

// NullConst is the null reference constant.
type NullConst struct{}

func (NullConst) valueNode()     {}
func (NullConst) String() string { return "null" }

// ParamRef reads the method parameter at Index (0-based, not counting the
// receiver). Jimple spells this "@parameter0: T".
type ParamRef struct {
	Index int
	Type  string
}

func (ParamRef) valueNode()       {}
func (p ParamRef) String() string { return fmt.Sprintf("@parameter%d", p.Index) }

// ThisRef reads the receiver of an instance method ("@this").
type ThisRef struct {
	Type string
}

func (ThisRef) valueNode()     {}
func (ThisRef) String() string { return "@this" }

// CaughtExRef reads the in-flight exception at the head of a trap handler
// ("@caughtexception").
type CaughtExRef struct{}

func (CaughtExRef) valueNode()     {}
func (CaughtExRef) String() string { return "@caughtexception" }

// FieldRef reads or writes a field. Base is the receiver local's name, or
// "" for a static field.
type FieldRef struct {
	Base  string // receiver local; "" => static
	Class string // declaring class
	Field string // field name
}

func (FieldRef) valueNode()  {}
func (FieldRef) lvalueNode() {}
func (f FieldRef) String() string {
	if f.Base == "" {
		return fmt.Sprintf("%s.%s", f.Class, f.Field)
	}
	return fmt.Sprintf("%s.<%s: %s>", f.Base, f.Class, f.Field)
}

// NewExpr allocates an instance of Type (without running a constructor;
// the constructor is a separate special-invoke, as in Jimple).
type NewExpr struct {
	Type string
}

func (NewExpr) valueNode()       {}
func (n NewExpr) String() string { return "new " + n.Type }

// InvokeKind distinguishes the dispatch mechanisms of an invocation.
type InvokeKind uint8

const (
	// InvokeVirtual dispatches on the runtime type of the receiver.
	InvokeVirtual InvokeKind = iota
	// InvokeInterface dispatches an interface method on the receiver.
	InvokeInterface
	// InvokeSpecial calls a constructor or a private/super method
	// directly, without dynamic dispatch.
	InvokeSpecial
	// InvokeStatic calls a static method.
	InvokeStatic
)

func (k InvokeKind) String() string {
	switch k {
	case InvokeVirtual:
		return "virtualinvoke"
	case InvokeInterface:
		return "interfaceinvoke"
	case InvokeSpecial:
		return "specialinvoke"
	case InvokeStatic:
		return "staticinvoke"
	}
	return fmt.Sprintf("invoke(%d)", uint8(k))
}

// InvokeExpr is a method invocation. For static calls Base is "".
type InvokeExpr struct {
	Kind   InvokeKind
	Base   string // receiver local name; "" for static invokes
	Callee Sig
	Args   []Value
}

func (InvokeExpr) valueNode() {}
func (e InvokeExpr) String() string {
	var b strings.Builder
	b.WriteString(e.Kind.String())
	b.WriteByte(' ')
	if e.Base != "" {
		b.WriteString(e.Base)
		b.WriteByte('.')
	}
	b.WriteString(e.Callee.Class)
	b.WriteByte('#')
	b.WriteString(e.Callee.Name)
	b.WriteByte('(')
	for i, a := range e.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpEQ BinOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
)

var binOpNames = [...]string{"==", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "%", "&", "|", "^"}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsComparison reports whether op yields a boolean.
func (op BinOp) IsComparison() bool { return op <= OpGE }

// BinExpr applies a binary operator to two operands.
type BinExpr struct {
	Op   BinOp
	L, R Value
}

func (BinExpr) valueNode() {}
func (e BinExpr) String() string {
	return fmt.Sprintf("%s %s %s", e.L.String(), e.Op.String(), e.R.String())
}

// NegExpr is logical negation of a boolean operand.
type NegExpr struct {
	V Value
}

func (NegExpr) valueNode()       {}
func (e NegExpr) String() string { return "!" + e.V.String() }

// CastExpr converts V to Type (a checked reference cast or a numeric
// conversion; the analyses treat it as a copy).
type CastExpr struct {
	Type string
	V    Value
}

func (CastExpr) valueNode()       {}
func (e CastExpr) String() string { return fmt.Sprintf("(%s) %s", e.Type, e.V.String()) }

// InstanceOfExpr tests whether V is an instance of Type.
type InstanceOfExpr struct {
	Type string
	V    Value
}

func (InstanceOfExpr) valueNode() {}
func (e InstanceOfExpr) String() string {
	return fmt.Sprintf("%s instanceof %s", e.V.String(), e.Type)
}

// UsedLocals appends to dst the names of all locals read by v (including
// invoke receivers) and returns the extended slice.
func UsedLocals(dst []string, v Value) []string {
	switch v := v.(type) {
	case nil:
		return dst
	case Local:
		return append(dst, v.Name)
	case FieldRef:
		if v.Base != "" {
			dst = append(dst, v.Base)
		}
		return dst
	case InvokeExpr:
		if v.Base != "" {
			dst = append(dst, v.Base)
		}
		for _, a := range v.Args {
			dst = UsedLocals(dst, a)
		}
		return dst
	case BinExpr:
		return UsedLocals(UsedLocals(dst, v.L), v.R)
	case NegExpr:
		return UsedLocals(dst, v.V)
	case CastExpr:
		return UsedLocals(dst, v.V)
	case InstanceOfExpr:
		return UsedLocals(dst, v.V)
	default:
		return dst
	}
}
