package jimple_test

import (
	"testing"

	"repro/internal/jimple"
)

// FuzzParse drives the textual assembly parser with untrusted sources:
// every input must parse cleanly or return an error — never panic or
// hang. Parsed programs must survive Print and re-Parse (the printer's
// output is the parser's input language). Seeds cover each statement and
// declaration form the grammar accepts.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"class a.B extends java.lang.Object {\n}",
		`class demo.Main extends android.app.Activity implements a.I {
  field mClient com.http.BasicHttpClient
  method onCreate(android.os.Bundle)void {
    local c com.http.BasicHttpClient
    local r java.lang.String
    L0:
    c = new com.http.BasicHttpClient
    specialinvoke c com.http.BasicHttpClient.<init>()void
    r = virtualinvoke c com.http.BasicHttpClient.get(java.lang.String)java.lang.String "http://x"
    if c == null goto L1
    return
    L1:
    return
    trap L0 L1 L1 java.io.IOException
  }
}`,
		`class t.Loop extends java.lang.Object {
  method spin(int)void {
    local i int
    i = param 0
    L0:
    i = i + 1
    if i < 10 goto L0
    throw i
    return
  }
}`,
		"class a.B extends c.D {\n  method m()void {\n    local x int\n    x = 1 // comment\n    return\n  }\n}",
		"class a.B extends c.D {\n  method m()void {\n    goto L9\n  }\n}",
		"class \"q\" extends {",
		"  trap L0",
		// Fuzz-found regression: a concrete method with an empty body used
		// to print as a signature-only line that re-parsed as abstract.
		"class 00\nmethod (0)0 {\n }\n}",
		// URL string building — the shapes the endpoint checker's constant
		// propagation consumes: concatenated segments, cleartext schemes,
		// hardcoded IP hosts, and query strings with printf/percent noise.
		`class u.Build extends java.lang.Object {
  method build()java.lang.String {
    local base java.lang.String
    local u java.lang.String
    base = "https://api.example.com"
    u = base + "/v1/data"
    u = u + "?q=term"
    return u
  }
}`,
		`class u.Debug extends java.lang.Object {
  method dbg()void {
    local c com.http.BasicHttpClient
    local r java.lang.String
    c = new com.http.BasicHttpClient
    specialinvoke c com.http.BasicHttpClient.<init>()void
    r = virtualinvoke c com.http.BasicHttpClient.get(java.lang.String)java.lang.String "http://203.0.113.7:8080/api?fmt=%22json%22"
    return
  }
}`,
		"class u.E extends c.D {\n  method m()java.lang.String {\n    local s java.lang.String\n    s = \"http://\" + \"127.0.0.1\"\n    return s\n  }\n}",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := jimple.Parse(src)
		if err != nil {
			return
		}
		// Whatever parses must print, and the printed form must parse
		// back to the same printed form (printer/parser round trip).
		text := jimple.Print(prog)
		again, err := jimple.Parse(text)
		if err != nil {
			t.Fatalf("re-parse of printed program failed: %v\n--- printed ---\n%s", err, text)
		}
		if jimple.Print(again) != text {
			t.Fatal("print/parse round trip not a fixpoint")
		}
	})
}
