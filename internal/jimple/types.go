// Package jimple defines a typed, three-address intermediate representation
// for Android-style application code, modeled after the Jimple IR produced
// by Soot/Dexpler. Apps under analysis are represented as jimple.Program
// values: a set of classes with fields and methods, where each method body
// is a flat list of statements with index-based branch targets and
// exception ranges (traps).
//
// The IR is the substrate every analysis in this repository consumes: the
// control-flow graph builder (internal/cfg), the class hierarchy and call
// graph (internal/hierarchy, internal/callgraph), the dataflow engines
// (internal/dataflow) and ultimately the NChecker checkers
// (internal/checkers). It is deliberately small — just the statement and
// expression inventory those analyses need — but faithful to Jimple's
// shape: explicit locals, explicit receivers, one side effect per
// statement.
package jimple

import (
	"fmt"
	"strings"
)

// Primitive and well-known type names. Types in this IR are plain strings:
// either a primitive name, a fully qualified class name
// ("java.lang.String"), or an array type ("byte[]").
const (
	TypeVoid    = "void"
	TypeBoolean = "boolean"
	TypeInt     = "int"
	TypeLong    = "long"
	TypeFloat   = "float"
	TypeDouble  = "double"
	TypeString  = "java.lang.String"
	TypeObject  = "java.lang.Object"
)

// IsPrimitive reports whether t names a primitive (non-reference) type.
func IsPrimitive(t string) bool {
	switch t {
	case TypeVoid, TypeBoolean, TypeInt, TypeLong, TypeFloat, TypeDouble, "byte", "char", "short":
		return true
	}
	return false
}

// IsRef reports whether t names a reference type (class or array).
func IsRef(t string) bool { return !IsPrimitive(t) }

// IsArray reports whether t names an array type.
func IsArray(t string) bool { return strings.HasSuffix(t, "[]") }

// ElemType returns the element type of an array type, or t itself if t is
// not an array type.
func ElemType(t string) string { return strings.TrimSuffix(t, "[]") }

// SimpleName returns the class name without its package qualifier.
// Inner-class separators ('$') are preserved.
func SimpleName(t string) string {
	if i := strings.LastIndexByte(t, '.'); i >= 0 {
		return t[i+1:]
	}
	return t
}

// OuterClass returns the outermost enclosing class name for an
// inner-class name such as "com.app.Main$Listener"; for a top-level class
// it returns the name unchanged.
func OuterClass(t string) string {
	if i := strings.IndexByte(SimpleName(t), '$'); i >= 0 {
		pkgEnd := strings.LastIndexByte(t, '.')
		return t[:pkgEnd+1+i]
	}
	return t
}

// Sig identifies a method: declaring class, name, parameter types, and
// return type. Sig values are comparable only via Key (slices are not
// comparable), and Key is the canonical form used in maps throughout the
// analyses.
type Sig struct {
	Class  string
	Name   string
	Params []string
	Ret    string
}

// MakeSig is shorthand for constructing a Sig.
func MakeSig(class, name string, params []string, ret string) Sig {
	return Sig{Class: class, Name: name, Params: params, Ret: ret}
}

// Key returns the canonical string form of the signature,
// e.g. "com.android.volley.RequestQueue.add(com.android.volley.Request)void".
func (s Sig) Key() string {
	var b strings.Builder
	b.WriteString(s.Class)
	b.WriteByte('.')
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, p := range s.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	b.WriteByte(')')
	b.WriteString(s.Ret)
	return b.String()
}

// SubSigKey returns the signature key without the declaring class —
// the "subsignature" used for override matching during virtual dispatch.
func (s Sig) SubSigKey() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, p := range s.Params {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	b.WriteByte(')')
	b.WriteString(s.Ret)
	return b.String()
}

// AppendKey appends the canonical Key form of s to dst and returns the
// extended slice. The bytes are identical to Key(); hot paths use it with
// a reused buffer to avoid the intermediate string allocation.
func (s Sig) AppendKey(dst []byte) []byte {
	dst = append(dst, s.Class...)
	dst = append(dst, '.')
	return s.appendSubSig(dst)
}

// AppendSubSigKey appends the canonical SubSigKey form of s to dst,
// byte-identical to SubSigKey().
func (s Sig) AppendSubSigKey(dst []byte) []byte {
	return s.appendSubSig(dst)
}

func (s Sig) appendSubSig(dst []byte) []byte {
	dst = append(dst, s.Name...)
	dst = append(dst, '(')
	for i, p := range s.Params {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, p...)
	}
	dst = append(dst, ')')
	return append(dst, s.Ret...)
}

func (s Sig) String() string { return s.Key() }

// WithClass returns a copy of s redeclared on class c. Used when resolving
// an inherited method to a concrete implementing class.
func (s Sig) WithClass(c string) Sig {
	return Sig{Class: c, Name: s.Name, Params: s.Params, Ret: s.Ret}
}

// ParseSigKey parses the canonical form produced by Sig.Key. It returns an
// error if the string is malformed.
func ParseSigKey(key string) (Sig, error) {
	open := strings.IndexByte(key, '(')
	closeIdx := strings.LastIndexByte(key, ')')
	if open < 0 || closeIdx < open {
		return Sig{}, fmt.Errorf("jimple: malformed signature key %q", key)
	}
	qual := key[:open]
	dot := strings.LastIndexByte(qual, '.')
	if dot < 0 {
		return Sig{}, fmt.Errorf("jimple: signature key %q lacks a declaring class", key)
	}
	var params []string
	if inner := key[open+1 : closeIdx]; inner != "" {
		params = strings.Split(inner, ",")
	}
	ret := key[closeIdx+1:]
	if ret == "" {
		return Sig{}, fmt.Errorf("jimple: signature key %q lacks a return type", key)
	}
	return Sig{Class: qual[:dot], Name: qual[dot+1:], Params: params, Ret: ret}, nil
}
