package jimple

import (
	"fmt"
)

// Stmt is a single IR statement. Method bodies are flat []Stmt slices;
// branch targets are indexes into that slice.
type Stmt interface {
	stmtNode()
	String() string
}

// AssignStmt stores the value of RHS into LHS.
type AssignStmt struct {
	LHS LValue
	RHS Value
}

func (*AssignStmt) stmtNode() {}
func (s *AssignStmt) String() string {
	return fmt.Sprintf("%s = %s", s.LHS.String(), s.RHS.String())
}

// InvokeStmt evaluates a call purely for its side effects (a call whose
// result, if any, is discarded).
type InvokeStmt struct {
	Call InvokeExpr
}

func (*InvokeStmt) stmtNode()        {}
func (s *InvokeStmt) String() string { return s.Call.String() }

// IfStmt branches to Target when Cond evaluates to a non-zero value;
// otherwise control falls through to the next statement.
type IfStmt struct {
	Cond   Value
	Target int
}

func (*IfStmt) stmtNode() {}
func (s *IfStmt) String() string {
	return fmt.Sprintf("if %s goto %d", s.Cond.String(), s.Target)
}

// GotoStmt unconditionally branches to Target.
type GotoStmt struct {
	Target int
}

func (*GotoStmt) stmtNode()        {}
func (s *GotoStmt) String() string { return fmt.Sprintf("goto %d", s.Target) }

// ReturnStmt returns from the method. V is nil for void returns.
type ReturnStmt struct {
	V Value
}

func (*ReturnStmt) stmtNode() {}
func (s *ReturnStmt) String() string {
	if s.V == nil {
		return "return"
	}
	return "return " + s.V.String()
}

// ThrowStmt raises the exception held in V.
type ThrowStmt struct {
	V Value
}

func (*ThrowStmt) stmtNode()        {}
func (s *ThrowStmt) String() string { return "throw " + s.V.String() }

// NopStmt does nothing; it exists as a branch-target anchor.
type NopStmt struct{}

func (*NopStmt) stmtNode()        {}
func (s *NopStmt) String() string { return "nop" }

// InvokeOf returns the invocation performed by s, if any: either the call
// of an InvokeStmt or an InvokeExpr on the right-hand side of an
// AssignStmt. ok is false when s performs no call.
func InvokeOf(s Stmt) (InvokeExpr, bool) {
	switch s := s.(type) {
	case *InvokeStmt:
		return s.Call, true
	case *AssignStmt:
		if inv, isInv := s.RHS.(InvokeExpr); isInv {
			return inv, true
		}
	}
	return InvokeExpr{}, false
}

// DefOf returns the name of the local defined (written) by s, or "" if s
// defines no local.
func DefOf(s Stmt) string {
	if a, ok := s.(*AssignStmt); ok {
		if l, isLocal := a.LHS.(Local); isLocal {
			return l.Name
		}
	}
	return ""
}

// UsesOf appends to dst the names of locals read by s and returns the
// extended slice.
func UsesOf(dst []string, s Stmt) []string {
	switch s := s.(type) {
	case *AssignStmt:
		dst = UsedLocals(dst, s.RHS)
		// A field store reads its receiver local.
		if f, ok := s.LHS.(FieldRef); ok && f.Base != "" {
			dst = append(dst, f.Base)
		}
		return dst
	case *InvokeStmt:
		return UsedLocals(dst, s.Call)
	case *IfStmt:
		return UsedLocals(dst, s.Cond)
	case *ReturnStmt:
		return UsedLocals(dst, s.V)
	case *ThrowStmt:
		return UsedLocals(dst, s.V)
	default:
		return dst
	}
}

// BranchTargets appends to dst the explicit branch targets of s (not
// including fallthrough) and returns the extended slice.
func BranchTargets(dst []int, s Stmt) []int {
	switch s := s.(type) {
	case *IfStmt:
		return append(dst, s.Target)
	case *GotoStmt:
		return append(dst, s.Target)
	default:
		return dst
	}
}

// FallsThrough reports whether control may continue to the next statement
// after s executes.
func FallsThrough(s Stmt) bool {
	switch s.(type) {
	case *GotoStmt, *ReturnStmt, *ThrowStmt:
		return false
	default:
		return true
	}
}
