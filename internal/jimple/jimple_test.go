package jimple

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSigKeyRoundTrip(t *testing.T) {
	cases := []Sig{
		{Class: "com.app.Main", Name: "onCreate", Params: []string{"android.os.Bundle"}, Ret: "void"},
		{Class: "a.B", Name: "<init>", Ret: "void"},
		{Class: "com.http.Client", Name: "get", Params: []string{"java.lang.String", "int"}, Ret: "com.http.Response"},
	}
	for _, want := range cases {
		got, err := ParseSigKey(want.Key())
		if err != nil {
			t.Fatalf("ParseSigKey(%q): %v", want.Key(), err)
		}
		if got.Key() != want.Key() {
			t.Errorf("round trip: got %q want %q", got.Key(), want.Key())
		}
	}
}

func TestParseSigKeyErrors(t *testing.T) {
	for _, bad := range []string{"", "noparens", "a.b(", "b()void", "a.b()", "(x)y"} {
		if _, err := ParseSigKey(bad); err == nil {
			t.Errorf("ParseSigKey(%q): expected error", bad)
		}
	}
}

func TestSubSigKeyIgnoresClass(t *testing.T) {
	a := Sig{Class: "x.A", Name: "m", Params: []string{"int"}, Ret: "void"}
	b := a.WithClass("y.B")
	if a.SubSigKey() != b.SubSigKey() {
		t.Errorf("subsig differs across classes: %q vs %q", a.SubSigKey(), b.SubSigKey())
	}
	if b.Class != "y.B" {
		t.Errorf("WithClass: got %q", b.Class)
	}
}

func TestTypeHelpers(t *testing.T) {
	if !IsPrimitive("int") || IsPrimitive("java.lang.String") {
		t.Error("IsPrimitive misclassifies")
	}
	if !IsRef("byte[]") || !IsArray("byte[]") || ElemType("byte[]") != "byte" {
		t.Error("array helpers misbehave")
	}
	if SimpleName("com.app.Main$Listener") != "Main$Listener" {
		t.Errorf("SimpleName: %q", SimpleName("com.app.Main$Listener"))
	}
	if OuterClass("com.app.Main$Listener") != "com.app.Main" {
		t.Errorf("OuterClass: %q", OuterClass("com.app.Main$Listener"))
	}
	if OuterClass("com.app.Main") != "com.app.Main" {
		t.Errorf("OuterClass top-level: %q", OuterClass("com.app.Main"))
	}
}

func buildSampleMethod(t *testing.T) *Method {
	t.Helper()
	b := NewBody()
	c := b.Local("c", "com.http.BasicHttpClient")
	r := b.Local("r", "com.http.HttpResponse")
	done := b.NewLabel()
	hBegin := b.NewLabel()
	hEnd := b.NewLabel()
	handler := b.NewLabel()
	e := b.Local("e", "java.io.IOException")
	b.Bind(hBegin)
	b.New(c, "com.http.BasicHttpClient")
	getSig := Sig{Class: "com.http.BasicHttpClient", Name: "get", Params: []string{TypeString}, Ret: "com.http.HttpResponse"}
	b.InvokeAssign(r, InvokeVirtual, "c", getSig, StrConst{V: "http://example.com"})
	b.Bind(hEnd)
	b.If(BinExpr{Op: OpEQ, L: r, R: NullConst{}}, done)
	b.Return(r)
	b.Bind(handler)
	b.Assign(e, CaughtExRef{})
	b.Bind(done)
	b.Return(NullConst{})
	b.TrapRegion(hBegin, hEnd, handler, "java.io.IOException")
	m, err := b.Build(Sig{Class: "com.app.Main", Name: "fetch", Ret: "com.http.HttpResponse"}, false)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestBuilderProducesValidMethod(t *testing.T) {
	m := buildSampleMethod(t)
	p := NewProgram()
	p.AddClass(&Class{Name: "com.app.Main", Super: TypeObject, Methods: []*Method{m}})
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(m.Traps) != 1 {
		t.Fatalf("traps: got %d want 1", len(m.Traps))
	}
	tr := m.Traps[0]
	if tr.Begin != 0 || tr.End <= tr.Begin || tr.Handler <= tr.End {
		t.Errorf("trap layout unexpected: %+v", tr)
	}
}

func TestBuilderUnboundLabel(t *testing.T) {
	b := NewBody()
	lbl := b.NewLabel()
	b.Goto(lbl)
	if _, err := b.Build(Sig{Class: "a.A", Name: "m", Ret: TypeVoid}, false); err == nil {
		t.Fatal("expected error for unbound label")
	}
}

func TestBuilderDoubleBind(t *testing.T) {
	b := NewBody()
	lbl := b.NewLabel()
	b.Bind(lbl)
	b.Return(nil)
	b.Bind(lbl)
	if _, err := b.Build(Sig{Class: "a.A", Name: "m", Ret: TypeVoid}, false); err == nil {
		t.Fatal("expected error for double bind")
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{Name: "a.A", Super: TypeObject, Methods: []*Method{{
		Sig:  Sig{Class: "a.A", Name: "m", Ret: TypeVoid},
		Body: []Stmt{&GotoStmt{Target: 5}},
	}}})
	if err := p.Validate(); err == nil {
		t.Fatal("expected out-of-range branch error")
	}
}

func TestValidateCatchesUndeclaredLocal(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{Name: "a.A", Super: TypeObject, Methods: []*Method{{
		Sig:  Sig{Class: "a.A", Name: "m", Ret: TypeVoid},
		Body: []Stmt{&ReturnStmt{V: Local{Name: "ghost"}}},
	}}})
	if err := p.Validate(); err == nil {
		t.Fatal("expected undeclared-local error")
	}
}

func TestValidateCatchesBadTrap(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{Name: "a.A", Super: TypeObject, Methods: []*Method{{
		Sig:   Sig{Class: "a.A", Name: "m", Ret: TypeVoid},
		Body:  []Stmt{&ReturnStmt{}},
		Traps: []Trap{{Begin: 0, End: 0, Handler: 0, Exception: "java.io.IOException"}},
	}}})
	if err := p.Validate(); err == nil {
		t.Fatal("expected bad-trap error")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m := buildSampleMethod(t)
	p := NewProgram()
	cls := &Class{
		Name: "com.app.Main", Super: "android.app.Activity",
		Interfaces: []string{"android.view.View$OnClickListener"},
		Fields:     []*Field{{Name: "mCount", Type: TypeInt}, {Name: "sInstance", Type: "com.app.Main", Static: true}},
		Methods:    []*Method{m},
	}
	p.AddClass(cls)
	text := Print(p)
	reparsed, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse of printed program failed: %v\n%s", err, text)
	}
	text2 := Print(reparsed)
	if text != text2 {
		t.Errorf("print/parse/print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
	if err := reparsed.Validate(); err != nil {
		t.Errorf("reparsed program invalid: %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"garbage",
		"class A {\n  zork\n}",
		"class A {\n  method m()void {\n    x = \n  }\n}",
		"class A {\n  method m()void {\n    goto Lmissing\n  }\n}",
		"class A {\n  method m()void {\n    local param int\n  }\n}",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted garbage:\n%s", src)
		}
	}
}

func TestParseFieldRefForms(t *testing.T) {
	src := `class a.A extends java.lang.Object {
  field f int
  field static g int
  method m()void {
    local x int
    x = field(y,a.A,f)
    local y a.A
    sfield(a.A,g) = x
    field(y,a.A,f) = 7
    return
  }
}`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	m := p.Class("a.A").MethodNamed("m")
	if m == nil || len(m.Body) != 4 {
		t.Fatalf("unexpected parse result: %+v", m)
	}
	a0 := m.Body[0].(*AssignStmt)
	fr, ok := a0.RHS.(FieldRef)
	if !ok || fr.Base != "y" || fr.Field != "f" {
		t.Errorf("field read parsed wrong: %#v", a0.RHS)
	}
	a1 := m.Body[1].(*AssignStmt)
	sf, ok := a1.LHS.(FieldRef)
	if !ok || sf.Base != "" || sf.Field != "g" {
		t.Errorf("static field write parsed wrong: %#v", a1.LHS)
	}
}

func TestInvokeOfAndHelpers(t *testing.T) {
	sig := Sig{Class: "a.A", Name: "m", Ret: TypeVoid}
	inv := InvokeExpr{Kind: InvokeVirtual, Base: "x", Callee: sig}
	if _, ok := InvokeOf(&InvokeStmt{Call: inv}); !ok {
		t.Error("InvokeOf missed InvokeStmt")
	}
	if _, ok := InvokeOf(&AssignStmt{LHS: Local{Name: "y"}, RHS: inv}); !ok {
		t.Error("InvokeOf missed assign-invoke")
	}
	if _, ok := InvokeOf(&ReturnStmt{}); ok {
		t.Error("InvokeOf false positive")
	}
	if DefOf(&AssignStmt{LHS: Local{Name: "y"}, RHS: IntConst{V: 1}}) != "y" {
		t.Error("DefOf wrong")
	}
	if DefOf(&AssignStmt{LHS: FieldRef{Base: "x", Class: "a.A", Field: "f"}, RHS: IntConst{}}) != "" {
		t.Error("DefOf should ignore field stores")
	}
	uses := UsesOf(nil, &IfStmt{Cond: BinExpr{Op: OpEQ, L: Local{Name: "a"}, R: Local{Name: "b"}}})
	if len(uses) != 2 {
		t.Errorf("UsesOf if: %v", uses)
	}
	uses = UsesOf(nil, &AssignStmt{LHS: FieldRef{Base: "recv", Class: "a.A", Field: "f"}, RHS: Local{Name: "v"}})
	if len(uses) != 2 {
		t.Errorf("UsesOf field store should include receiver: %v", uses)
	}
}

func TestFallsThroughAndBranchTargets(t *testing.T) {
	if FallsThrough(&GotoStmt{Target: 0}) || FallsThrough(&ReturnStmt{}) || FallsThrough(&ThrowStmt{V: Local{Name: "e"}}) {
		t.Error("terminators must not fall through")
	}
	if !FallsThrough(&IfStmt{Cond: IntConst{V: 1}, Target: 0}) || !FallsThrough(&NopStmt{}) {
		t.Error("if/nop must fall through")
	}
	ts := BranchTargets(nil, &IfStmt{Cond: IntConst{V: 1}, Target: 3})
	if len(ts) != 1 || ts[0] != 3 {
		t.Errorf("BranchTargets if: %v", ts)
	}
}

func TestProgramMergePrefersReceiver(t *testing.T) {
	p := NewProgram()
	p.AddClass(&Class{Name: "a.A", Super: TypeObject})
	q := NewProgram()
	q.AddClass(&Class{Name: "a.A", Super: "x.Y"})
	q.AddClass(&Class{Name: "b.B", Super: TypeObject})
	p.Merge(q)
	if p.Class("a.A").Super != TypeObject {
		t.Error("Merge overwrote existing class")
	}
	if p.Class("b.B") == nil {
		t.Error("Merge dropped new class")
	}
	if p.NumClasses() != 2 {
		t.Errorf("NumClasses: %d", p.NumClasses())
	}
}

// Property: Sig.Key round-trips through ParseSigKey for arbitrary
// identifier-shaped components.
func TestQuickSigRoundTrip(t *testing.T) {
	clean := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "x"
		}
		return b.String()
	}
	f := func(cls, name, p1, p2, ret string) bool {
		sig := Sig{
			Class:  "pkg." + clean(cls),
			Name:   clean(name),
			Params: []string{clean(p1), clean(p2)},
			Ret:    clean(ret),
		}
		got, err := ParseSigKey(sig.Key())
		return err == nil && got.Key() == sig.Key()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: printing then parsing a random straight-line method is a fixed
// point of Print.
func TestQuickPrintParseStraightLine(t *testing.T) {
	f := func(vals []int8) bool {
		b := NewBody()
		x := b.Local("x", TypeInt)
		y := b.Local("y", TypeInt)
		b.Assign(x, IntConst{V: 0})
		for _, v := range vals {
			b.Assign(y, BinExpr{Op: OpAdd, L: x, R: IntConst{V: int64(v)}})
			b.Assign(x, y)
		}
		b.Return(x)
		m, err := b.Build(Sig{Class: "q.Q", Name: "m", Ret: TypeInt}, true)
		if err != nil {
			return false
		}
		p := NewProgram()
		p.AddClass(&Class{Name: "q.Q", Super: TypeObject, Methods: []*Method{m}})
		text := Print(p)
		re, err := Parse(text)
		if err != nil {
			return false
		}
		return Print(re) == text
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNumStmts(t *testing.T) {
	m := buildSampleMethod(t)
	p := NewProgram()
	p.AddClass(&Class{Name: "com.app.Main", Super: TypeObject, Methods: []*Method{m}})
	if got := p.NumStmts(); got != len(m.Body) {
		t.Errorf("NumStmts: got %d want %d", got, len(m.Body))
	}
}

// kitchenSink exercises every statement and value form in one program.
const kitchenSink = `class k.Sink extends java.lang.Object implements k.I,k.J {
  field f int
  field static g java.lang.String
  method abstract absM(int)void
  method static util(int,java.lang.String)int {
    local a int
    local b int
    local s java.lang.String
    local o java.lang.Object
    local e java.lang.RuntimeException
    local flag boolean
    a = param 0 int
    s = param 1 java.lang.String
    b = a * 2
    b = a + 1
    b = a - 1
    b = a / 2
    b = a % 3
    b = a & 7
    b = a | 8
    b = a ^ 15
    flag = a <= b
    flag = a >= b
    flag = a < b
    flag = a > b
    flag = a != b
    flag = !flag
    o = cast java.lang.Object s
    flag = instanceof java.lang.String o
    sfield(k.Sink,g) = s
    s = sfield(k.Sink,g)
    if flag goto L1
    nop
    L0:
    e = new java.lang.RuntimeException
    specialinvoke e java.lang.RuntimeException.<init>()void
    throw e
    L1:
    goto L2
    L2:
    return b
    trap L0 L1 L1 java.lang.RuntimeException
  }
}
interface k.I {
}
interface k.J {
}`

func TestKitchenSinkRoundTrip(t *testing.T) {
	p, err := Parse(kitchenSink)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	text := Print(p)
	re, err := Parse(text)
	if err != nil {
		t.Fatalf("re-Parse: %v\n%s", err, text)
	}
	if Print(re) != text {
		t.Error("kitchen sink not a print/parse fixed point")
	}
}

func TestStringersSmoke(t *testing.T) {
	// Every node's String() must be non-empty (used in diagnostics).
	vals := []Value{
		Local{Name: "x"}, IntConst{V: 3}, StrConst{V: "s"}, NullConst{},
		ParamRef{Index: 1, Type: "int"}, ThisRef{Type: "a.A"}, CaughtExRef{},
		FieldRef{Base: "x", Class: "a.A", Field: "f"},
		FieldRef{Class: "a.A", Field: "g"},
		NewExpr{Type: "a.A"},
		InvokeExpr{Kind: InvokeStatic, Callee: Sig{Class: "a.A", Name: "m", Ret: "void"}},
		InvokeExpr{Kind: InvokeVirtual, Base: "x", Callee: Sig{Class: "a.A", Name: "m", Ret: "void"},
			Args: []Value{IntConst{V: 1}}},
		BinExpr{Op: OpAdd, L: IntConst{V: 1}, R: IntConst{V: 2}},
		NegExpr{V: Local{Name: "b"}},
		CastExpr{Type: "a.A", V: Local{Name: "x"}},
		InstanceOfExpr{Type: "a.A", V: Local{Name: "x"}},
	}
	for _, v := range vals {
		if v.String() == "" {
			t.Errorf("empty String() for %T", v)
		}
	}
	stmts := []Stmt{
		&AssignStmt{LHS: Local{Name: "x"}, RHS: IntConst{V: 1}},
		&InvokeStmt{Call: InvokeExpr{Kind: InvokeStatic, Callee: Sig{Class: "a.A", Name: "m", Ret: "void"}}},
		&IfStmt{Cond: Local{Name: "c"}, Target: 0},
		&GotoStmt{Target: 0},
		&ReturnStmt{}, &ReturnStmt{V: Local{Name: "x"}},
		&ThrowStmt{V: Local{Name: "e"}},
		&NopStmt{},
	}
	for _, s := range stmts {
		if s.String() == "" {
			t.Errorf("empty String() for %T", s)
		}
	}
	for _, k := range []InvokeKind{InvokeVirtual, InvokeInterface, InvokeSpecial, InvokeStatic} {
		if k.String() == "" {
			t.Errorf("empty kind string %d", k)
		}
	}
	for op := OpEQ; op <= OpXor; op++ {
		if op.String() == "" {
			t.Errorf("empty op string %d", op)
		}
	}
}

func TestBuilderAuxiliaries(t *testing.T) {
	b := NewBody()
	e := b.Local("e", "java.lang.RuntimeException")
	if b.Mark() != 0 {
		t.Error("Mark should start at 0")
	}
	begin := b.Mark()
	b.Invoke(InvokeStatic, "", Sig{Class: "a.A", Name: "go", Ret: TypeVoid})
	end := b.Mark()
	b.Nop()
	handler := b.Mark()
	b.Assign(e, CaughtExRef{})
	b.Throw(e)
	b.TrapAt(begin, end, handler, "java.lang.RuntimeException")
	m := b.MustBuild(Sig{Class: "a.A", Name: "aux", Ret: TypeVoid}, true)
	if len(m.Traps) != 1 || m.Traps[0].Handler != handler {
		t.Errorf("TrapAt mishandled: %+v", m.Traps)
	}
	if m.LocalType("e") != "java.lang.RuntimeException" || m.LocalType("ghost") != "" {
		t.Error("LocalType wrong")
	}
}

func TestProgramMethodLookup(t *testing.T) {
	p := MustParse(kitchenSink)
	sig := Sig{Class: "k.Sink", Name: "util", Params: []string{"int", TypeString}, Ret: TypeInt}
	if p.Method(sig) == nil {
		t.Error("Program.Method failed")
	}
	if p.Method(sig.WithClass("no.Such")) != nil {
		t.Error("Program.Method false positive")
	}
	c := p.Class("k.Sink")
	m := &Method{Sig: Sig{Name: "added", Ret: TypeVoid}, Abstract: true}
	c.AddMethod(m)
	if m.Sig.Class != "k.Sink" {
		t.Error("AddMethod should set the declaring class")
	}
	if PrintClass(c) == "" {
		t.Error("PrintClass empty")
	}
}

func TestMustParsePanicsOnGarbage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on garbage")
		}
	}()
	MustParse("zork")
}
