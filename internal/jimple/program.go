package jimple

import (
	"fmt"
	"sort"
)

// LocalDecl declares a method-local variable with its static type.
type LocalDecl struct {
	Name string
	Type string
}

// Trap is an exception handler range: if a statement with index in
// [Begin, End) throws an exception assignable to Exception, control
// transfers to the statement at Handler.
type Trap struct {
	Begin     int
	End       int
	Handler   int
	Exception string
}

// Method is a method definition. Abstract and interface methods have a nil
// Body.
type Method struct {
	Sig      Sig
	Static   bool
	Abstract bool
	Locals   []LocalDecl
	Body     []Stmt
	Traps    []Trap
}

// HasBody reports whether the method has a concrete body.
func (m *Method) HasBody() bool { return !m.Abstract && m.Body != nil }

// LocalType returns the declared type of the named local, or "" if the
// local is not declared.
func (m *Method) LocalType(name string) string {
	for _, l := range m.Locals {
		if l.Name == name {
			return l.Type
		}
	}
	return ""
}

// Field is a field definition.
type Field struct {
	Name   string
	Type   string
	Static bool
}

// Class is a class or interface definition.
type Class struct {
	Name       string
	Super      string // "" only for java.lang.Object and roots of stub hierarchies
	Interfaces []string
	IsIface    bool
	Abstract   bool
	Fields     []*Field
	Methods    []*Method
}

// Method returns the method with the given subsignature key declared
// directly on c, or nil.
func (c *Class) Method(subSigKey string) *Method {
	for _, m := range c.Methods {
		if m.Sig.SubSigKey() == subSigKey {
			return m
		}
	}
	return nil
}

// MethodNamed returns the first method declared on c with the given name,
// or nil. Convenient in tests and generators where names are unique.
func (c *Class) MethodNamed(name string) *Method {
	for _, m := range c.Methods {
		if m.Sig.Name == name {
			return m
		}
	}
	return nil
}

// AddMethod appends m to the class, setting its declaring class.
func (c *Class) AddMethod(m *Method) *Method {
	m.Sig.Class = c.Name
	c.Methods = append(c.Methods, m)
	return m
}

// Program is a closed set of classes under analysis: the app's own classes
// plus whatever framework/library stub classes the app's hierarchy needs.
type Program struct {
	classes map[string]*Class
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{classes: make(map[string]*Class)}
}

// AddClass inserts c, replacing any prior class with the same name.
func (p *Program) AddClass(c *Class) *Class {
	p.classes[c.Name] = c
	return c
}

// Class returns the named class, or nil if it is not in the program.
func (p *Program) Class(name string) *Class { return p.classes[name] }

// NumClasses returns the number of classes in the program.
func (p *Program) NumClasses() int { return len(p.classes) }

// Classes returns all classes sorted by name. The slice is freshly
// allocated; the *Class values are shared.
func (p *Program) Classes() []*Class {
	out := make([]*Class, 0, len(p.classes))
	for _, c := range p.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Method resolves a signature to its defining method by exact declaring
// class, or nil if absent.
func (p *Program) Method(sig Sig) *Method {
	c := p.classes[sig.Class]
	if c == nil {
		return nil
	}
	return c.Method(sig.SubSigKey())
}

// Merge adds every class of other into p. Classes already present in p are
// kept (p wins), so framework stubs can be merged under app classes that
// deliberately shadow them.
func (p *Program) Merge(other *Program) {
	for name, c := range other.classes {
		if _, exists := p.classes[name]; !exists {
			p.classes[name] = c
		}
	}
}

// NumStmts returns the total number of statements across all method
// bodies; a cheap size metric used in reports and benchmarks.
func (p *Program) NumStmts() int {
	n := 0
	for _, c := range p.classes {
		for _, m := range c.Methods {
			n += len(m.Body)
		}
	}
	return n
}

// Validate checks structural invariants of every method body: branch
// targets in range, traps well-formed, locals declared exactly once, and
// all used locals declared. It returns the first violation found, or nil.
func (p *Program) Validate() error {
	for _, c := range p.Classes() {
		for _, m := range c.Methods {
			if err := validateMethod(m); err != nil {
				return fmt.Errorf("%s: %w", m.Sig.Key(), err)
			}
		}
	}
	return nil
}

func validateMethod(m *Method) error {
	if !m.HasBody() {
		if len(m.Body) > 0 {
			return fmt.Errorf("abstract method has a body")
		}
		return nil
	}
	if len(m.Body) == 0 {
		return fmt.Errorf("concrete method has an empty body")
	}
	declared := make(map[string]bool, len(m.Locals))
	for _, l := range m.Locals {
		if declared[l.Name] {
			return fmt.Errorf("local %q declared twice", l.Name)
		}
		if l.Name == "" || l.Type == "" {
			return fmt.Errorf("local with empty name or type")
		}
		declared[l.Name] = true
	}
	n := len(m.Body)
	var scratch []int
	var uses []string
	for i, s := range m.Body {
		if s == nil {
			return fmt.Errorf("nil statement at %d", i)
		}
		scratch = BranchTargets(scratch[:0], s)
		for _, t := range scratch {
			if t < 0 || t >= n {
				return fmt.Errorf("statement %d branches out of range (%d of %d)", i, t, n)
			}
		}
		uses = UsesOf(uses[:0], s)
		if d := DefOf(s); d != "" {
			uses = append(uses, d)
		}
		if a, ok := s.(*AssignStmt); ok {
			if f, isField := a.LHS.(FieldRef); isField && f.Base != "" {
				uses = append(uses, f.Base)
			}
		}
		for _, u := range uses {
			if !declared[u] {
				return fmt.Errorf("statement %d uses undeclared local %q", i, u)
			}
		}
	}
	for ti, t := range m.Traps {
		if t.Begin < 0 || t.End > n || t.Begin >= t.End {
			return fmt.Errorf("trap %d has bad range [%d,%d) of %d", ti, t.Begin, t.End, n)
		}
		if t.Handler < 0 || t.Handler >= n {
			return fmt.Errorf("trap %d has bad handler %d", ti, t.Handler)
		}
		if t.Exception == "" {
			return fmt.Errorf("trap %d has empty exception type", ti)
		}
	}
	return nil
}
