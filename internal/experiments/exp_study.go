package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/study"
)

// Table1Result reproduces the paper's Table 1 (the 21 studied apps).
type Table1Result struct {
	Apps []study.App
}

// Table1 returns the studied-app roster.
func Table1() Table1Result { return Table1Result{Apps: study.Apps()} }

// Render formats the table.
func (r Table1Result) Render() string {
	rows := make([][]string, len(r.Apps))
	for i, a := range r.Apps {
		rows[i] = []string{a.Name, a.Category, a.Installs}
	}
	return "Table 1: 21 Android apps used in the study\n" +
		table([]string{"App/Sys", "Category", "#Installs"}, rows)
}

// Table2Result reproduces Table 2 (representative NPDs).
type Table2Result struct {
	Rows []study.Representative
}

// Table2 returns the representative cases.
func Table2() Table2Result { return Table2Result{Rows: study.Representatives()} }

// Render formats the table.
func (r Table2Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, c := range r.Rows {
		rows[i] = []string{"(" + c.ID + ")", c.Category, c.App, c.Desc, c.Resolution}
	}
	return "Table 2: Representative NPDs found in real-world mobile apps\n" +
		table([]string{"ID", "Category", "App", "NPD description", "Developer's resolution"}, rows)
}

// Figure4Result reproduces Figure 4 (NPD impact distribution).
type Figure4Result struct {
	Counts   map[study.Impact]int
	Percents map[study.Impact]float64
	Total    int
}

// Figure4 aggregates the study dataset by UX impact.
func Figure4() Figure4Result {
	c, p := study.ImpactDistribution()
	return Figure4Result{Counts: c, Percents: p, Total: len(study.Dataset())}
}

// Render formats the distribution with a text bar chart.
func (r Figure4Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 4: Distribution of NPD impact on user experience\n")
	order := []study.Impact{study.Dysfunction, study.UnfriendlyUI, study.CrashFreeze, study.BatteryDrain}
	for _, k := range order {
		bar := strings.Repeat("#", r.Counts[k])
		fmt.Fprintf(&b, "  %-14s %3.0f%% (%2d/%2d) %s\n", k, r.Percents[k], r.Counts[k], r.Total, bar)
	}
	return b.String()
}

// Table3Result reproduces Table 3 (root causes).
type Table3Result struct {
	Counts   map[study.RootCause]int
	Percents map[study.RootCause]float64
	Subs     map[study.RootCause]map[study.SubCause]int
	Total    int
}

// Table3 aggregates the study dataset by root cause.
func Table3() Table3Result {
	c, p := study.CauseDistribution()
	subs := map[study.RootCause]map[study.SubCause]int{
		study.MishandleTransient: study.SubCauseDistribution(study.MishandleTransient),
		study.MishandlePermanent: study.SubCauseDistribution(study.MishandlePermanent),
		study.MishandleNetSwitch: study.SubCauseDistribution(study.MishandleNetSwitch),
	}
	return Table3Result{Counts: c, Percents: p, Subs: subs, Total: len(study.Dataset())}
}

// Render formats the table with sub-cause splits.
func (r Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: Root causes of studied NPDs\n")
	order := []study.RootCause{
		study.NoConnectivityChecks, study.MishandleTransient,
		study.MishandlePermanent, study.MishandleNetSwitch,
	}
	for _, k := range order {
		fmt.Fprintf(&b, "  %-32s %2d (%2.0f%%)\n", k, r.Counts[k], r.Percents[k])
		if subs := r.Subs[k]; subs != nil {
			keys := make([]string, 0, len(subs))
			for sub := range subs {
				keys = append(keys, string(sub))
			}
			sort.Strings(keys)
			for _, sub := range keys {
				fmt.Fprintf(&b, "      %-40s %2d\n", sub, subs[study.SubCause(sub)])
			}
		}
	}
	return b.String()
}
