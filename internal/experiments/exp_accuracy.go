package experiments

import (
	"fmt"

	"repro/internal/apimodel"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/report"
)

// Table9Row is one cause row of the accuracy table.
type Table9Row struct {
	Cause   report.Cause
	Correct int
	FP      int
	KnownFN int
}

// Table9Result reproduces Table 9: NChecker's accuracy on the 16 golden
// (open-source stand-in) apps, measured against the generator's ground
// truth.
type Table9Result struct {
	Rows     []Table9Row
	Correct  int
	FP       int
	FN       int
	Accuracy float64
}

// Table9 scans the goldens and scores each warning against the oracle.
func Table9() (Table9Result, error) {
	reg := apimodel.NewRegistry()
	nc := core.New()
	perCause := map[report.Cause]*Table9Row{}
	order := []report.Cause{}
	get := func(c report.Cause) *Table9Row {
		if r, ok := perCause[c]; ok {
			return r
		}
		r := &Table9Row{Cause: c}
		perCause[c] = r
		order = append(order, c)
		return r
	}
	for _, g := range corpus.GoldenSpecs() {
		app, err := corpus.Build(g.Spec)
		if err != nil {
			return Table9Result{}, err
		}
		res := nc.ScanApp(app)
		got := map[report.Cause]int{}
		for i := range res.Reports {
			got[res.Reports[i].Cause]++
		}
		at := corpus.OracleApp(reg, g.Spec)
		for c, n := range got {
			fp := at.FalsePositives[c]
			if fp > n {
				fp = n
			}
			row := get(c)
			row.Correct += n - fp
			row.FP += fp
		}
		for c, n := range at.FalseNegatives {
			get(c).KnownFN += n
		}
	}
	var out Table9Result
	for _, c := range report.AllCauses() {
		if row, ok := perCause[c]; ok {
			out.Rows = append(out.Rows, *row)
			out.Correct += row.Correct
			out.FP += row.FP
			out.FN += row.KnownFN
		}
	}
	if d := out.Correct + out.FP; d > 0 {
		out.Accuracy = float64(out.Correct) / float64(d)
	}
	return out, nil
}

// Table9WithICC re-runs the accuracy evaluation with the inter-component
// analysis enabled — the paper's §4.7 future work implemented. The nine
// false positives disappear; the five path-insensitivity false negatives
// remain.
func Table9WithICC() (Table9Result, error) {
	reg := apimodel.NewRegistry()
	nc := core.NewWithOptions(core.Options{EnableICC: true})
	perCause := map[report.Cause]*Table9Row{}
	get := func(c report.Cause) *Table9Row {
		if r, ok := perCause[c]; ok {
			return r
		}
		r := &Table9Row{Cause: c}
		perCause[c] = r
		return r
	}
	for _, g := range corpus.GoldenSpecs() {
		app, err := corpus.Build(g.Spec)
		if err != nil {
			return Table9Result{}, err
		}
		res := nc.ScanApp(app)
		// With ICC the tool expectation equals the real-defect set minus
		// the path-insensitivity misses; grade against the real oracle.
		real := map[report.Cause]int{}
		fnExpected := map[report.Cause]int{}
		for _, s := range g.Spec.Sites {
			truth := corpus.Oracle(reg, s)
			iccSet := map[report.Cause]bool{}
			for _, c := range corpus.OracleICC(reg, s) {
				iccSet[c] = true
			}
			for _, c := range truth.RealDefects {
				real[c]++
				if !iccSet[c] {
					fnExpected[c]++
				}
			}
		}
		got := map[report.Cause]int{}
		for i := range res.Reports {
			got[res.Reports[i].Cause]++
		}
		for c, n := range got {
			row := get(c)
			correct := n
			if correct > real[c] {
				row.FP += correct - real[c]
				correct = real[c]
			}
			row.Correct += correct
		}
		for c, n := range fnExpected {
			get(c).KnownFN += n
		}
	}
	var out Table9Result
	for _, c := range report.AllCauses() {
		if row, ok := perCause[c]; ok {
			out.Rows = append(out.Rows, *row)
			out.Correct += row.Correct
			out.FP += row.FP
			out.FN += row.KnownFN
		}
	}
	if d := out.Correct + out.FP; d > 0 {
		out.Accuracy = float64(out.Correct) / float64(d)
	}
	return out, nil
}

// Render formats the table.
func (r Table9Result) Render() string {
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{
			string(row.Cause),
			fmt.Sprintf("%d", row.Correct),
			fmt.Sprintf("%d", row.FP),
			fmt.Sprintf("%d", row.KnownFN),
		})
	}
	rows = append(rows, []string{"Total",
		fmt.Sprintf("%d", r.Correct), fmt.Sprintf("%d", r.FP), fmt.Sprintf("%d", r.FN)})
	head := fmt.Sprintf("Table 9: accuracy on the 16 golden apps — %.1f%% (paper: 94+%%)\n", 100*r.Accuracy)
	return head + table([]string{"NPD cause", "#Correct warning", "#FP", "#Known FN"}, rows)
}
