package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFamilyBreakdownGolden locks the per-family precision/recall
// breakdown of the corpus scan against a committed snapshot. Refresh with
//
//	go test ./internal/experiments -run TestFamilyBreakdownGolden -update-golden
func TestFamilyBreakdownGolden(t *testing.T) {
	cs, err := DefaultScan()
	if err != nil {
		t.Fatalf("DefaultScan: %v", err)
	}
	got := FamilyBreakdown(cs).Render()
	path := filepath.Join("testdata", "golden_family.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing snapshot (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("family breakdown changed; run with -update-golden if intended.\n%s",
			firstDiff(string(want), got))
	}
}

// TestFamilyBreakdownShape sanity-checks the breakdown independent of the
// snapshot: one row per family, and every new family (5-8) actually
// exercised by the corpus — warnings emitted and at least one correct.
func TestFamilyBreakdownShape(t *testing.T) {
	cs, err := DefaultScan()
	if err != nil {
		t.Fatalf("DefaultScan: %v", err)
	}
	fr := FamilyBreakdown(cs)
	if len(fr.Rows) != 8 {
		t.Fatalf("got %d family rows, want 8", len(fr.Rows))
	}
	for _, row := range fr.Rows {
		if row.Family >= 5 && row.Family <= 8 {
			if row.Warnings == 0 {
				t.Errorf("family %d (%s): no warnings on the corpus — emitter or checker inert", row.Family, row.Stage)
			}
			if row.Correct == 0 {
				t.Errorf("family %d (%s): no correct warnings on the corpus", row.Family, row.Stage)
			}
		}
		if row.Warnings != row.Correct+row.FP {
			t.Errorf("family %d: warnings=%d != correct=%d + fp=%d", row.Family, row.Warnings, row.Correct, row.FP)
		}
	}
}
