package experiments

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden report snapshots")

// goldenReportText scans the 16 golden apps with the default (fully
// interprocedural) configuration and renders every warning in a fixed
// layout: one header per app followed by its reports in scan order.
func goldenReportText(t *testing.T) string {
	t.Helper()
	return goldenReportTextWith(t, core.Options{Workers: 1})
}

// goldenReportTextWith is goldenReportText under explicit scan options —
// the differential cache harness renders the same corpus with the cache
// off, cold, warm, and read-only and requires byte-identical text.
func goldenReportTextWith(t *testing.T, opts core.Options) string {
	t.Helper()
	apps, err := corpus.BuildGoldens()
	if err != nil {
		t.Fatalf("BuildGoldens: %v", err)
	}
	specs := corpus.GoldenSpecs()
	nc := core.NewWithOptions(opts)
	var b strings.Builder
	for i, app := range apps {
		res := nc.ScanApp(app)
		if err := res.Err(); err != nil {
			t.Fatalf("golden %s: degraded scan: %v", specs[i].Name, err)
		}
		fmt.Fprintf(&b, "== golden-%s: %d requests, %d warnings ==\n",
			specs[i].Name, res.Stats.Requests, len(res.Reports))
		for j := range res.Reports {
			b.WriteString(res.Reports[j].Render())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestGoldenReportsRegression locks the rendered warning output of the
// golden-app corpus against a committed snapshot: any change to checker
// behavior — intended or not — shows up as a diff here. Refresh with
//
//	go test ./internal/experiments -run TestGoldenReportsRegression -update-golden
func TestGoldenReportsRegression(t *testing.T) {
	got := goldenReportText(t)
	path := filepath.Join("testdata", "golden_reports.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing snapshot (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("golden reports changed; run with -update-golden if intended.\n%s",
			firstDiff(string(want), got))
	}
}

// firstDiff renders the first differing line of two snapshots.
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n-%s\n+%s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d", len(w), len(g))
}
