package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apimodel"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/report"
)

// exp_validate.go — the dynamic-validation breakdown (DESIGN.md §10).
//
// The paper validates NChecker's warnings by hand (Table 9); this
// experiment does it mechanically: every golden-app warning is replayed
// under the injected-disruption scenarios and lands in exactly one bucket
// — Confirmed (the defect manifested), Unconfirmed (no manifestation: a
// false-positive candidate), or NotValidated (the replay was
// inconclusive). Cross-referencing the generator's ground truth then
// measures how much triage the verdicts buy: how many of the oracle's
// known false positives validation correctly leaves unconfirmed.

// ValidationRow is one golden app's verdict breakdown.
type ValidationRow struct {
	App          string
	Warnings     int
	Confirmed    int
	Unconfirmed  int
	NotValidated int
}

// ValidationResult is the corpus-wide breakdown plus the ground-truth
// cross-reference.
type ValidationResult struct {
	Rows []ValidationRow
	// KnownFPs is the oracle's false-positive warning count across the
	// goldens; FPsUnconfirmed of them were left unconfirmed by dynamic
	// validation (matched per app and cause), i.e. correctly deprioritized
	// for a triager who reads confirmed warnings first.
	KnownFPs       int
	FPsUnconfirmed int
}

// ValidationBreakdown scans the 16 golden apps with -validate and scores
// the verdicts against the generator's ground truth.
func ValidationBreakdown() (ValidationResult, error) {
	reg := apimodel.NewRegistry()
	nc := core.NewWithOptions(core.Options{Workers: 1, Validate: true})
	var out ValidationResult
	for _, g := range corpus.GoldenSpecs() {
		app, err := corpus.Build(g.Spec)
		if err != nil {
			return ValidationResult{}, err
		}
		res := nc.ScanApp(app)
		if err := res.Err(); err != nil {
			return ValidationResult{}, fmt.Errorf("golden %s: degraded scan: %w", g.Name, err)
		}
		row := ValidationRow{App: g.Name, Warnings: len(res.Reports)}
		unconfByCause := map[report.Cause]int{}
		for i := range res.Reports {
			switch res.Reports[i].Validation {
			case report.ValidationConfirmed:
				row.Confirmed++
			case report.ValidationUnconfirmed:
				row.Unconfirmed++
				unconfByCause[res.Reports[i].Cause]++
			case report.ValidationNotValidated:
				row.NotValidated++
			default:
				return ValidationResult{}, fmt.Errorf("golden %s: report %d has no verdict", g.Name, i)
			}
		}
		out.Rows = append(out.Rows, row)
		// Per-cause matching against the oracle: of the fp known-FP
		// warnings for a cause, the unconfirmed ones (up to fp) were
		// correctly flagged as false-positive candidates.
		at := corpus.OracleApp(reg, g.Spec)
		for c, fp := range at.FalsePositives {
			out.KnownFPs += fp
			caught := unconfByCause[c]
			if caught > fp {
				caught = fp
			}
			out.FPsUnconfirmed += caught
		}
	}
	return out, nil
}

// Render lays the breakdown out as the committed snapshot table.
func (v ValidationResult) Render() string {
	var b strings.Builder
	b.WriteString("Dynamic validation of golden-app warnings (replay under injected disruptions)\n\n")
	rows := make([][]string, 0, len(v.Rows)+1)
	var tot ValidationRow
	for _, r := range v.Rows {
		rows = append(rows, []string{r.App,
			fmt.Sprint(r.Warnings), fmt.Sprint(r.Confirmed),
			fmt.Sprint(r.Unconfirmed), fmt.Sprint(r.NotValidated)})
		tot.Warnings += r.Warnings
		tot.Confirmed += r.Confirmed
		tot.Unconfirmed += r.Unconfirmed
		tot.NotValidated += r.NotValidated
	}
	rows = append(rows, []string{"TOTAL",
		fmt.Sprint(tot.Warnings), fmt.Sprint(tot.Confirmed),
		fmt.Sprint(tot.Unconfirmed), fmt.Sprint(tot.NotValidated)})
	b.WriteString(table(
		[]string{"app", "warnings", "confirmed", "unconfirmed", "not-validated"}, rows))
	fmt.Fprintf(&b, "\nknown false positives (oracle): %d, left unconfirmed by validation: %d (%s)\n",
		v.KnownFPs, v.FPsUnconfirmed, pct(v.FPsUnconfirmed, v.KnownFPs))
	b.WriteString("a triager reading confirmed warnings first defers every validated FP candidate\n")
	return b.String()
}
