package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apimodel"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lint"
	"repro/internal/report"
)

// lintRuleToCause maps each lint rule to the NPD cause it approximates.
var lintRuleToCause = map[lint.Rule]report.Cause{
	lint.RuleNoConnCheck:   report.CauseNoConnectivityCheck,
	lint.RuleNoTimeout:     report.CauseNoTimeout,
	lint.RuleNoRetryConfig: report.CauseNoRetryConfig,
	lint.RuleNoErrorUI:     report.CauseNoFailureNotification,
	lint.RuleUncheckedResp: report.CauseNoResponseCheck,
}

// LintComparisonResult scores the shallow lint baseline against NChecker
// on the golden apps at (app, cause) granularity — the only granularity
// app-level lint can even express.
type LintComparisonResult struct {
	LintTP, LintFP, LintFN             int
	NCheckerTP, NCheckerFP, NCheckerFN int
	LintWarnings, NCheckerWarnings     int
}

// LintComparison runs both tools over the 16 goldens and grades them
// against the generator's ground truth.
func LintComparison() (LintComparisonResult, error) {
	reg := apimodel.NewRegistry()
	nc := core.New()
	var out LintComparisonResult
	causes := []report.Cause{
		report.CauseNoConnectivityCheck, report.CauseNoTimeout,
		report.CauseNoRetryConfig, report.CauseNoFailureNotification,
		report.CauseNoResponseCheck,
	}
	for _, g := range corpus.GoldenSpecs() {
		app, err := corpus.Build(g.Spec)
		if err != nil {
			return out, err
		}
		truth := corpus.OracleApp(reg, g.Spec)

		lintHas := map[report.Cause]bool{}
		findings := lint.Run(app)
		out.LintWarnings += len(findings)
		for _, f := range findings {
			if c, ok := lintRuleToCause[f.Rule]; ok {
				lintHas[c] = true
			}
		}
		ncHas := map[report.Cause]bool{}
		res := nc.ScanApp(app)
		out.NCheckerWarnings += len(res.Reports)
		for i := range res.Reports {
			ncHas[res.Reports[i].Cause] = true
		}
		for _, c := range causes {
			real := truth.RealByCause[c] > 0
			score(&out.LintTP, &out.LintFP, &out.LintFN, lintHas[c], real)
			score(&out.NCheckerTP, &out.NCheckerFP, &out.NCheckerFN, ncHas[c], real)
		}
	}
	return out, nil
}

func score(tp, fp, fn *int, flagged, real bool) {
	switch {
	case flagged && real:
		*tp++
	case flagged && !real:
		*fp++
	case !flagged && real:
		*fn++
	}
}

// Recall and precision helpers.
func rate(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Render formats the comparison.
func (r LintComparisonResult) Render() string {
	var b strings.Builder
	b.WriteString("Baseline comparison: app-level network lint vs. NChecker (16 golden apps,\n")
	b.WriteString("                     graded per (app, cause) against ground truth)\n")
	rows := [][]string{
		{"app-level lint",
			fmt.Sprintf("%d", r.LintWarnings),
			fmt.Sprintf("%d/%d/%d", r.LintTP, r.LintFP, r.LintFN),
			fmt.Sprintf("%.0f%%", 100*rate(r.LintTP, r.LintTP+r.LintFN)),
			fmt.Sprintf("%.0f%%", 100*rate(r.LintTP, r.LintTP+r.LintFP))},
		{"NChecker",
			fmt.Sprintf("%d", r.NCheckerWarnings),
			fmt.Sprintf("%d/%d/%d", r.NCheckerTP, r.NCheckerFP, r.NCheckerFN),
			fmt.Sprintf("%.0f%%", 100*rate(r.NCheckerTP, r.NCheckerTP+r.NCheckerFN)),
			fmt.Sprintf("%.0f%%", 100*rate(r.NCheckerTP, r.NCheckerTP+r.NCheckerFP))},
	}
	b.WriteString(table([]string{"Tool", "Warnings", "TP/FP/FN", "Recall", "Precision"}, rows))
	b.WriteString("Lint cannot see partial misses (one config call anywhere silences a rule),\n")
	b.WriteString("cannot localize a warning to a request, and knows nothing of request context.\n")
	return b.String()
}
