package experiments

import (
	"reflect"
	"testing"

	"repro/internal/apk"
	"repro/internal/core"
)

// This file is the targeted engine mode's corpus-scale differential: the
// demand-driven engine (DESIGN.md §9) must be observationally identical
// to the full engine on every app of the evaluation corpus — reports and
// stats, at any worker count, over both the in-memory and the lazy
// (container-decoding) scan paths. Only Diagnostics may differ.

// TestTargetedDifferentialFullCorpus scans all 285 corpus apps in both
// modes and requires per-app reports and stats to match exactly — the
// PR's headline acceptance criterion.
func TestTargetedDifferentialFullCorpus(t *testing.T) {
	full, err := ScanCorpusWith(Seed, core.Options{})
	if err != nil {
		t.Fatalf("full corpus scan: %v", err)
	}
	targeted, err := ScanCorpusWith(Seed, core.Options{Mode: core.ModeTargeted})
	if err != nil {
		t.Fatalf("targeted corpus scan: %v", err)
	}
	if n := targeted.IncompleteApps(); n > 0 {
		t.Fatalf("targeted corpus scan degraded %d apps: %v", n, targeted.FailedAppNames())
	}
	if len(targeted.Apps) != len(full.Apps) {
		t.Fatalf("app counts differ: full %d, targeted %d", len(full.Apps), len(targeted.Apps))
	}
	for i := range full.Apps {
		f, g := &full.Apps[i], &targeted.Apps[i]
		if f.Name != g.Name {
			t.Fatalf("app %d: name %q vs %q", i, f.Name, g.Name)
		}
		if !reflect.DeepEqual(f.Reports, g.Reports) {
			t.Errorf("app %s: targeted reports differ from full", f.Name)
		}
		if !reflect.DeepEqual(f.Stats, g.Stats) {
			t.Errorf("app %s: targeted stats differ from full", f.Name)
		}
	}
}

// TestTargetedDifferentialLazyPath routes the goldens through the byte
// container (apk.Encode → ScanBytes), which in targeted mode decodes
// lazily and materializes only the demanded classes — the path cmd/
// nchecker and the serve endpoint take. Reports and stats must match the
// in-memory full scan, and at least one golden must actually skip
// classes (or the lazy fast path silently degenerated to eager decoding).
func TestTargetedDifferentialLazyPath(t *testing.T) {
	apps := mustGoldens(t)
	fullScan := core.New()
	lazyScan := core.NewWithOptions(core.Options{Mode: core.ModeTargeted})
	skipped := 0
	for _, a := range apps {
		data, err := apk.Encode(a.App)
		if err != nil {
			t.Fatalf("%s: encode: %v", a.Name, err)
		}
		full := fullScan.ScanApp(a.App)
		lazy, err := lazyScan.ScanBytes(data)
		if err != nil {
			t.Fatalf("%s: targeted ScanBytes: %v", a.Name, err)
		}
		if lazy.Incomplete {
			t.Fatalf("%s: targeted scan degraded: %v", a.Name, lazy.Err())
		}
		if !reflect.DeepEqual(full.Reports, lazy.Reports) {
			t.Errorf("%s: lazy targeted reports differ from full", a.Name)
		}
		if !reflect.DeepEqual(full.Stats, lazy.Stats) {
			t.Errorf("%s: lazy targeted stats differ from full", a.Name)
		}
		skipped += lazy.Diagnostics.Targeted.ClassesSkipped
	}
	if skipped == 0 {
		t.Error("no golden skipped a single class; the lazy demand-driven path did no less work than full decoding")
	}
}

// TestTargetedDeterministicAcrossCorpusWorkers: the targeted corpus scan
// is schedule-independent — any worker count yields the same per-app
// reports as the single-worker run.
func TestTargetedDeterministicAcrossCorpusWorkers(t *testing.T) {
	base, err := ScanCorpusWith(Seed, core.Options{Workers: 1, Mode: core.ModeTargeted})
	if err != nil {
		t.Fatalf("corpus scan: %v", err)
	}
	for _, workers := range []int{4, 16} {
		cs, err := ScanCorpusWith(Seed, core.Options{Workers: workers, Mode: core.ModeTargeted})
		if err != nil {
			t.Fatalf("corpus scan (w=%d): %v", workers, err)
		}
		for i := range base.Apps {
			if !reflect.DeepEqual(base.Apps[i].Reports, cs.Apps[i].Reports) {
				t.Errorf("w=%d: app %s reports differ from single-worker run", workers, base.Apps[i].Name)
			}
		}
	}
}
