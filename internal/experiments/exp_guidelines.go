package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/netsim"
	"repro/internal/robustlib"
)

// Table11Result operationalizes the paper's Table 11: each design
// guideline measured as the robust reference library vs. the misuse-prone
// baseline over the same simulated workload (mixed user/background/POST
// requests on a lossy 3G link with an offline window).
type Table11Result struct {
	Requests int

	OfflineAttemptsNaive  int // radio wakeups while offline (energy waste)
	OfflineAttemptsRobust int

	DuplicatePostsNaive  int // non-idempotent bodies received twice+
	DuplicatePostsRobust int

	SilentUserFailuresNaive  int // user-visible operations failing without a message
	SilentUserFailuresRobust int

	InvalidToSuccessNaive  int // invalid responses reaching the success path
	InvalidToSuccessRobust int

	BackgroundRecoveredRobust int // deferred offline work delivered after reconnect
	BackgroundLostNaive       int // offline background work burned with no recovery

	AttemptsNaive  int // total radio wakeups
	AttemptsRobust int
}

// Table11 runs the comparison workload deterministically.
func Table11(seed int64) Table11Result {
	const n = 400
	rng := rand.New(rand.NewSource(seed))
	profile := netsim.ThreeGLossy(0.15)

	devN := robustlib.NewDevice(profile, seed+1)
	devN.InvalidResponseP = 0.05
	naive := robustlib.NewNaive(devN)

	devR := robustlib.NewDevice(profile, seed+2)
	devR.InvalidResponseP = 0.05
	robust := robustlib.New(devR)

	var r Table11Result
	r.Requests = n
	for i := 0; i < n; i++ {
		// A 20%-of-time offline window in the middle of the run.
		offline := i >= n/2 && i < n/2+n/5
		devN.SetOnline(!offline)
		devR.SetOnline(!offline)

		req := robustlib.Request{Method: "GET", Size: 8 * 1024, Ctx: robustlib.User}
		req.URL = fmt.Sprintf("/r/%d", i)
		switch {
		case rng.Float64() < 0.2:
			req.Method = "POST"
			req.Size = 16 * 1024
		case rng.Float64() < 0.4:
			req.Ctx = robustlib.Background
			req.Size = 32 * 1024
		}

		invalidSeen := 0
		no := naive.Do(req, func(resp robustlib.Response) {
			if !resp.Valid {
				invalidSeen++
			}
		})
		r.AttemptsNaive += no.Attempts
		r.InvalidToSuccessNaive += invalidSeen
		r.DuplicatePostsNaive += no.DuplicatePosts
		if offline {
			r.OfflineAttemptsNaive += no.Attempts
			if req.Ctx == robustlib.Background {
				r.BackgroundLostNaive++
			}
		}
		if req.Ctx == robustlib.User && !no.Success && !no.NotifiedUser {
			r.SilentUserFailuresNaive++
		}

		ro := robust.Do(req, robustlib.Handler{})
		r.AttemptsRobust += ro.Attempts
		r.DuplicatePostsRobust += ro.DuplicatePosts
		if offline {
			r.OfflineAttemptsRobust += ro.Attempts
		}
		if req.Ctx == robustlib.User && !ro.Success && !ro.NotifiedUser {
			r.SilentUserFailuresRobust++
		}

		if !offline && robust.DeferredCount() > 0 {
			for _, fo := range robust.FlushDeferred() {
				r.AttemptsRobust += fo.Attempts
				if fo.Success {
					r.BackgroundRecoveredRobust++
				}
			}
		}
	}
	devR.SetOnline(true)
	for _, fo := range robust.FlushDeferred() {
		r.AttemptsRobust += fo.Attempts
		if fo.Success {
			r.BackgroundRecoveredRobust++
		}
	}
	return r
}

// Render formats the guideline comparison.
func (r Table11Result) Render() string {
	rows := [][]string{
		{"Auto connectivity check", "radio wakeups while offline",
			fmt.Sprintf("%d", r.OfflineAttemptsNaive), fmt.Sprintf("%d", r.OfflineAttemptsRobust)},
		{"Context-aware retry defaults", "duplicate POST bodies at server",
			fmt.Sprintf("%d", r.DuplicatePostsNaive), fmt.Sprintf("%d", r.DuplicatePostsRobust)},
		{"Predefined failure messages", "silent user-visible failures",
			fmt.Sprintf("%d", r.SilentUserFailuresNaive), fmt.Sprintf("%d", r.SilentUserFailuresRobust)},
		{"Invalid responses to error callback", "invalid responses in success path",
			fmt.Sprintf("%d", r.InvalidToSuccessNaive), fmt.Sprintf("%d", r.InvalidToSuccessRobust)},
		{"Automatic failure recovery", "offline background work recovered",
			fmt.Sprintf("%d lost", r.BackgroundLostNaive), fmt.Sprintf("%d recovered", r.BackgroundRecoveredRobust)},
		{"Bounded, backoff retries", "total radio wakeups",
			fmt.Sprintf("%d", r.AttemptsNaive), fmt.Sprintf("%d", r.AttemptsRobust)},
	}
	head := fmt.Sprintf("Table 11: §6 guidelines as behaviour — naive vs. robust library (%d mixed requests,\n"+
		"          3G with 15%% loss and an offline window)\n", r.Requests)
	return head + table([]string{"Guideline", "Metric", "Naive client", "Robust library"}, rows)
}
