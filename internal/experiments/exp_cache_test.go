package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
)

// This file is the persistent scan cache's correctness spine: a
// differential harness proving that the cache is invisible in every
// observable output. The golden corpus is rendered to report text under
// a matrix of cache modes, cache temperatures, and worker counts, and
// every cell must be byte-identical to the cache-off baseline —
// including after a crashed writer truncated entries mid-commit and
// after an interrupted (deadline-killed) prior run.

// testCacheDir returns a per-test cache directory. When
// NCHECKER_TEST_CACHEDIR is set (scripts/check.sh's cache-enabled pass),
// tests share that root — each test gets a subdirectory keyed by its
// name so runs exercise the on-disk store across processes; otherwise
// each test gets a throwaway t.TempDir.
func testCacheDir(t *testing.T) string {
	t.Helper()
	root := os.Getenv("NCHECKER_TEST_CACHEDIR")
	if root == "" {
		return t.TempDir()
	}
	dir := filepath.Join(root, t.Name())
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("mkdir %s: %v", dir, err)
	}
	return dir
}

// TestCacheDifferentialGoldenCorpus: the matrix. Baseline is cache-off,
// single worker; every mode × temperature × worker-count cell must
// render byte-identical report text.
func TestCacheDifferentialGoldenCorpus(t *testing.T) {
	baseline := goldenReportTextWith(t, core.Options{Workers: 1})
	dir := testCacheDir(t)

	cells := []struct {
		name string
		opts core.Options
	}{
		// Cold rw fills the cache; warm rw reads it back; ro reads without
		// writing; off ignores it. Worker counts cross-cut every mode.
		{"rw-cold-w1", core.Options{Workers: 1, CacheDir: dir, CacheMode: core.CacheRW}},
		{"rw-warm-w1", core.Options{Workers: 1, CacheDir: dir, CacheMode: core.CacheRW}},
		{"rw-warm-w4", core.Options{Workers: 4, CacheDir: dir, CacheMode: core.CacheRW}},
		{"ro-w1", core.Options{Workers: 1, CacheDir: dir, CacheMode: core.CacheRO}},
		{"ro-w4", core.Options{Workers: 4, CacheDir: dir, CacheMode: core.CacheRO}},
		{"off-w4", core.Options{Workers: 4}},
		// The targeted engine cross-cuts the same matrix: its cache entries
		// live under a distinct fingerprint (mode is fingerprinted), so the
		// first rw cell fills targeted entries and the later ones read them.
		{"targeted-off-w1", core.Options{Workers: 1, Mode: core.ModeTargeted}},
		{"targeted-off-w4", core.Options{Workers: 4, Mode: core.ModeTargeted}},
		{"targeted-rw-cold-w1", core.Options{Workers: 1, CacheDir: dir, CacheMode: core.CacheRW, Mode: core.ModeTargeted}},
		{"targeted-rw-warm-w4", core.Options{Workers: 4, CacheDir: dir, CacheMode: core.CacheRW, Mode: core.ModeTargeted}},
		{"targeted-ro-w4", core.Options{Workers: 4, CacheDir: dir, CacheMode: core.CacheRO, Mode: core.ModeTargeted}},
	}
	for _, cell := range cells {
		got := goldenReportTextWith(t, cell.opts)
		if got != baseline {
			t.Errorf("%s: report text differs from cache-off baseline:\n%s",
				cell.name, firstDiff(baseline, got))
		}
	}
}

// TestCacheDifferentialFullCorpus: cold vs. warm over the whole 285-app
// corpus — per-app reports and stats must match exactly, and the warm
// pass must actually be answered from cache.
func TestCacheDifferentialFullCorpus(t *testing.T) {
	dir := testCacheDir(t)
	cold, err := ScanCorpusWith(Seed, core.Options{CacheDir: dir, CacheMode: core.CacheRW})
	if err != nil {
		t.Fatalf("cold corpus scan: %v", err)
	}
	if n := cold.IncompleteApps(); n > 0 {
		t.Fatalf("cold corpus scan degraded %d apps: %v", n, cold.FailedAppNames())
	}
	warm, err := ScanCorpusWith(Seed, core.Options{CacheDir: dir, CacheMode: core.CacheRW})
	if err != nil {
		t.Fatalf("warm corpus scan: %v", err)
	}
	if len(warm.Apps) != len(cold.Apps) {
		t.Fatalf("app counts differ: cold %d, warm %d", len(cold.Apps), len(warm.Apps))
	}
	hits := 0
	for i := range cold.Apps {
		c, w := &cold.Apps[i], &warm.Apps[i]
		if c.Name != w.Name {
			t.Fatalf("app %d: name %q vs %q", i, c.Name, w.Name)
		}
		if !reflect.DeepEqual(c.Reports, w.Reports) {
			t.Errorf("app %s: warm reports differ from cold", c.Name)
		}
		if !reflect.DeepEqual(c.Stats, w.Stats) {
			t.Errorf("app %s: warm stats differ from cold", c.Name)
		}
		hits += w.Diag.Cache.StoreHits
	}
	if hits < len(cold.Apps) {
		t.Errorf("warm pass hit only %d of %d apps", hits, len(cold.Apps))
	}
}

// TestCacheSurvivesCrashedWriter: truncate every cached entry (a writer
// killed mid-commit) — the rescan must detect the damage, fall back cold
// with identical output, and heal the cache in rw mode.
func TestCacheSurvivesCrashedWriter(t *testing.T) {
	baseline := goldenReportTextWith(t, core.Options{Workers: 1})
	dir := t.TempDir() // isolation-sensitive: must not share a populated dir
	opts := core.Options{Workers: 1, CacheDir: dir, CacheMode: core.CacheRW}

	if got := goldenReportTextWith(t, opts); got != baseline {
		t.Fatalf("cold fill differs from baseline:\n%s", firstDiff(baseline, got))
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cold fill cached nothing (err=%v)", err)
	}
	for _, e := range entries {
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		if err := os.WriteFile(p, data[:len(data)/3], 0o644); err != nil {
			t.Fatalf("truncate %s: %v", p, err)
		}
	}
	if got := goldenReportTextWith(t, opts); got != baseline {
		t.Errorf("rescan over truncated cache differs from baseline:\n%s", firstDiff(baseline, got))
	}
	// Healed: the next pass is served from (rewritten) entries and still
	// matches.
	if got := goldenReportTextWith(t, opts); got != baseline {
		t.Errorf("healed rescan differs from baseline:\n%s", firstDiff(baseline, got))
	}
}

// TestInterruptedRunNeverPoisons: a prior run killed by its deadline must
// leave the cache empty — a degraded scan's partial results cached as
// truth would corrupt every later rescan.
func TestInterruptedRunNeverPoisons(t *testing.T) {
	baseline := goldenReportTextWith(t, core.Options{Workers: 1})
	dir := t.TempDir() // isolation-sensitive: starts empty

	// The deadline pre-expires before any stage runs: every scan is
	// degraded, so nothing may be committed.
	interrupted := ScanApps(mustGoldens(t), core.Options{
		CacheDir: dir, CacheMode: core.CacheRW, Timeout: time.Nanosecond,
	})
	degraded := 0
	for i := range interrupted.Apps {
		if interrupted.Apps[i].Incomplete {
			degraded++
		}
		if n := interrupted.Apps[i].Diag.Cache.StorePuts; n != 0 {
			t.Errorf("interrupted scan of %s wrote %d cache entries", interrupted.Apps[i].Name, n)
		}
	}
	if degraded == 0 {
		t.Fatalf("nanosecond deadline degraded no scans; the interruption premise failed")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read cache dir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("interrupted run left %d files in the cache", len(entries))
	}

	// The next clean run over the same directory matches the baseline.
	got := goldenReportTextWith(t, core.Options{Workers: 1, CacheDir: dir, CacheMode: core.CacheRW})
	if got != baseline {
		t.Errorf("clean run after interruption differs from baseline:\n%s", firstDiff(baseline, got))
	}
}

// TestGoldenSnapshotUnderCacheRW: the committed golden_reports.txt
// snapshot must hold with the cache on — both the cold pass that fills
// the cache and the warm pass served from it.
func TestGoldenSnapshotUnderCacheRW(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_reports.txt"))
	if err != nil {
		t.Fatalf("missing snapshot: %v", err)
	}
	dir := testCacheDir(t)
	opts := core.Options{Workers: 1, CacheDir: dir, CacheMode: core.CacheRW}
	for _, pass := range []string{"cold", "warm"} {
		if got := goldenReportTextWith(t, opts); got != string(want) {
			t.Errorf("%s pass diverges from the committed snapshot:\n%s",
				pass, firstDiff(string(want), got))
		}
	}
}

// mustGoldens builds the 16 golden apps as corpus entries for ScanApps.
func mustGoldens(t *testing.T) []*corpus.CorpusApp {
	t.Helper()
	apps, err := corpus.BuildGoldens()
	if err != nil {
		t.Fatalf("BuildGoldens: %v", err)
	}
	specs := corpus.GoldenSpecs()
	out := make([]*corpus.CorpusApp, len(apps))
	for i := range apps {
		out[i] = &corpus.CorpusApp{
			Name: "golden-" + specs[i].Name, Spec: specs[i].Spec,
			App: apps[i], Golden: true,
		}
	}
	return out
}
