package experiments

import (
	"strings"
	"testing"
)

func scan(t *testing.T) *CorpusScan {
	t.Helper()
	cs, err := DefaultScan()
	if err != nil {
		t.Fatalf("DefaultScan: %v", err)
	}
	return cs
}

func TestFigure3Shape(t *testing.T) {
	r := Figure3(120, 1)
	if len(r.Series) != 2 {
		t.Fatalf("series: %d", len(r.Series))
	}
	clean, lossy := r.Series[0], r.Series[1]
	for i := range clean.Rates {
		if clean.Rates[i] < 0.97 {
			t.Errorf("clean 3G rate[%d]=%.2f, want ≈1", i, clean.Rates[i])
		}
	}
	first, last := lossy.Rates[0], lossy.Rates[len(lossy.Rates)-1]
	if first < 0.85 {
		t.Errorf("lossy 2K rate %.2f too low", first)
	}
	if last > 0.45 {
		t.Errorf("lossy 2M rate %.2f too high — failure should dominate", last)
	}
	if !strings.Contains(r.Render(), "2M") {
		t.Error("render missing size labels")
	}
}

func TestStudyExperimentsRender(t *testing.T) {
	if got := Table1(); len(got.Apps) != 21 || !strings.Contains(got.Render(), "Chrome") {
		t.Error("Table1 wrong")
	}
	if got := Table2(); len(got.Rows) != 6 || !strings.Contains(got.Render(), "ChatSecure") {
		t.Error("Table2 wrong")
	}
	f4 := Figure4()
	if f4.Total != 90 || !strings.Contains(f4.Render(), "Dysfunction") {
		t.Error("Figure4 wrong")
	}
	t3 := Table3()
	if t3.Total != 90 || !strings.Contains(t3.Render(), "No connectivity checks") {
		t.Error("Table3 wrong")
	}
}

func TestTable4Matrix(t *testing.T) {
	r := Table4()
	if len(r.Libraries) != 6 || len(r.RowNames) != 8 {
		t.Fatalf("matrix shape: %d libs × %d rows", len(r.Libraries), len(r.RowNames))
	}
	// Row "No timeout": Volley and Android Async auto (defaults exist),
	// HttpURL/Apache/OkHttp api-only.
	var timeoutRow []string
	for i, n := range r.RowNames {
		if n == "No timeout" {
			timeoutRow = r.Cells[i]
		}
	}
	if timeoutRow == nil {
		t.Fatal("missing No timeout row")
	}
	if timeoutRow[0] != "api" { // HttpURLConnection
		t.Errorf("HttpURL timeout cell: %s", timeoutRow[0])
	}
	if timeoutRow[2] != "auto" { // Volley
		t.Errorf("Volley timeout cell: %s", timeoutRow[2])
	}
	if !strings.Contains(r.Render(), "Table 4") {
		t.Error("render header missing")
	}
}

func TestTable5Catalogue(t *testing.T) {
	r := Table5()
	if len(r.Rows) < 9 {
		t.Fatalf("pattern rows: %d", len(r.Rows))
	}
	if !strings.Contains(r.Render(), "no-connectivity-check") {
		t.Error("render missing causes")
	}
}

func TestTable6MatchesPaperShape(t *testing.T) {
	cs := scan(t)
	r := Table6(cs)
	want := map[string][2]float64{ // cause -> [paper %, tolerance]
		"Missed conn. checks":          {43, 7},
		"Missed timeout APIs":          {49, 7},
		"Missed retry APIs":            {70, 8},
		"Over retries":                 {55, 10},
		"Missed failure notifications": {57, 8},
		"Missed response checks":       {75, 15},
	}
	for _, row := range r.Rows {
		w, ok := want[row.Cause]
		if !ok {
			t.Errorf("unexpected row %q", row.Cause)
			continue
		}
		got := 100 * float64(row.BuggyApps) / float64(row.EvalApps)
		if got < w[0]-w[1] || got > w[0]+w[1] {
			t.Errorf("%s: %.0f%% buggy (%d/%d), paper %v%%", row.Cause, got, row.BuggyApps, row.EvalApps, w[0])
		}
	}
	// Denominators.
	for _, row := range r.Rows {
		switch row.Cause {
		case "Missed conn. checks", "Missed timeout APIs":
			if row.EvalApps != 285 {
				t.Errorf("%s eval apps %d, want 285", row.Cause, row.EvalApps)
			}
		case "Missed retry APIs", "Over retries":
			if row.EvalApps != 91 {
				t.Errorf("%s eval apps %d, want 91", row.Cause, row.EvalApps)
			}
		case "Missed failure notifications":
			if row.EvalApps < 256 || row.EvalApps > 272 {
				t.Errorf("%s eval apps %d, want ≈264", row.Cause, row.EvalApps)
			}
		case "Missed response checks":
			if row.EvalApps != 20 {
				t.Errorf("%s eval apps %d, want 20", row.Cause, row.EvalApps)
			}
		}
	}
	if r.TotalWarnings < 3300 || r.TotalWarnings > 5200 {
		t.Errorf("total NPDs %d, paper 4180", r.TotalWarnings)
	}
	if r.BuggyTotal < 277 || r.BuggyTotal > 284 {
		t.Errorf("buggy apps %d, paper 281", r.BuggyTotal)
	}
}

func TestTable7MatchesPaper(t *testing.T) {
	cs := scan(t)
	r := Table7(cs)
	if r.Native != 270 || r.Volley != 78 || r.AsyncHTTP != 25 || r.Basic != 18 || r.OkHttp != 11 {
		t.Errorf("Table 7 mismatch: %+v", r)
	}
}

func TestTable8Shape(t *testing.T) {
	cs := scan(t)
	r := Table8(cs)
	if r.EvalApps != 91 {
		t.Fatalf("eval apps %d, want 91", r.EvalApps)
	}
	check := func(name string, apps int, paperPct, tol float64) {
		got := 100 * float64(apps) / float64(r.EvalApps)
		if got < paperPct-tol || got > paperPct+tol {
			t.Errorf("%s: %.0f%% (%d apps), paper %v%%", name, got, apps, paperPct)
		}
	}
	check("no retry in Activities", r.NoRetryActivityApps, 8, 8)
	check("over retry in Services", r.OverServiceApps, 32, 12)
	check("over retry in POSTs", r.OverPostApps, 25, 12)
	// The headline finding: most over-retries come from library defaults.
	if r.OverServiceDefault < 0.55 {
		t.Errorf("service over-retry default share %.2f, paper 76%%", r.OverServiceDefault)
	}
	if r.OverPostDefault < 0.7 {
		t.Errorf("POST over-retry default share %.2f, paper 98%%", r.OverPostDefault)
	}
}

func TestFigure8Shape(t *testing.T) {
	cs := scan(t)
	r := Figure8(cs)
	if len(r.ConnCheck.Ratios) == 0 || len(r.Timeout.Ratios) == 0 {
		t.Fatal("no partially-missing apps found")
	}
	// Paper: 62% of partially-missing apps miss conn checks in over half
	// their requests; 58% for timeouts. Equivalent: CDF(0.5) ≈ 0.38/0.42.
	if c := r.ConnCheck.At(0.5); c < 0.18 || c > 0.60 {
		t.Errorf("conn CDF(0.5)=%.2f, paper ≈0.38", c)
	}
	if c := r.Timeout.At(0.5); c < 0.20 || c > 0.62 {
		t.Errorf("timeout CDF(0.5)=%.2f, paper ≈0.42", c)
	}
	xs, ys := r.ConnCheck.Points()
	for i := 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] || xs[i] < xs[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	cs := scan(t)
	r := Figure9(cs)
	if len(r.Notif.Ratios) == 0 {
		t.Fatal("no partially-notifying apps")
	}
	// §5.2.3: explicit callbacks are notified more often than implicit
	// ones (paper: 30% vs 12%).
	if r.ExplicitNotifiedPct <= r.ImplicitNotifiedPct {
		t.Errorf("explicit (%.0f%%) should out-notify implicit (%.0f%%)",
			r.ExplicitNotifiedPct, r.ImplicitNotifiedPct)
	}
	// 93% of apps ignore error types.
	if r.ErrorTypeIgnoredPct < 80 {
		t.Errorf("error types ignored by %.0f%% of apps, paper 93%%", r.ErrorTypeIgnoredPct)
	}
}

func TestTable9MatchesPaper(t *testing.T) {
	r, err := Table9()
	if err != nil {
		t.Fatal(err)
	}
	if r.Correct != 130 || r.FP != 9 || r.FN != 5 {
		t.Errorf("Table 9 totals: correct=%d FP=%d FN=%d, want 130/9/5", r.Correct, r.FP, r.FN)
	}
	if r.Accuracy < 0.93 || r.Accuracy > 0.95 {
		t.Errorf("accuracy %.3f, want ≈0.94", r.Accuracy)
	}
	if !strings.Contains(r.Render(), "130") {
		t.Error("render missing totals")
	}
}

func TestTable10AllAutoFixed(t *testing.T) {
	r, err := Table10()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.AutoFixed {
			t.Errorf("%s (%s) not auto-fixed", row.Name, row.NPD)
		}
	}
}

func TestFigure10Shape(t *testing.T) {
	r := Figure10(Seed)
	if len(r.Rows) != 6 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	if r.OverallMean < 1.4 || r.OverallMean > 2.0 {
		t.Errorf("overall mean %.2f, paper 1.7", r.OverallMean)
	}
	if r.HardCaseCorrect != 1 {
		t.Errorf("hard case fixed by %d, paper 1", r.HardCaseCorrect)
	}
	if !strings.Contains(r.Render(), "overall") {
		t.Error("render missing overall row")
	}
}

func TestTable9WithICCEliminatesFPs(t *testing.T) {
	r, err := Table9WithICC()
	if err != nil {
		t.Fatal(err)
	}
	if r.Correct != 130 || r.FP != 0 || r.FN != 5 {
		t.Errorf("Table 9 + ICC: correct=%d FP=%d FN=%d, want 130/0/5", r.Correct, r.FP, r.FN)
	}
	if r.Accuracy != 1.0 {
		t.Errorf("accuracy with ICC = %.3f, want 1.0 (no FPs left)", r.Accuracy)
	}
}

func TestTable11RobustDominatesNaive(t *testing.T) {
	r := Table11(Seed)
	if r.Requests == 0 {
		t.Fatal("empty workload")
	}
	if r.OfflineAttemptsRobust != 0 {
		t.Errorf("robust library transmitted %d times while offline", r.OfflineAttemptsRobust)
	}
	if r.OfflineAttemptsNaive == 0 {
		t.Error("naive baseline never burned the radio offline — comparison vacuous")
	}
	if r.DuplicatePostsRobust != 0 {
		t.Errorf("robust library duplicated %d POSTs", r.DuplicatePostsRobust)
	}
	if r.DuplicatePostsNaive == 0 {
		t.Error("naive baseline never duplicated a POST")
	}
	if r.SilentUserFailuresRobust != 0 {
		t.Errorf("robust library had %d silent user failures", r.SilentUserFailuresRobust)
	}
	if r.InvalidToSuccessRobust != 0 {
		t.Errorf("robust library leaked %d invalid responses to the success path", r.InvalidToSuccessRobust)
	}
	if r.InvalidToSuccessNaive == 0 {
		t.Error("naive baseline never leaked an invalid response")
	}
	if r.BackgroundRecoveredRobust == 0 {
		t.Error("robust library recovered no deferred background work")
	}
	if !strings.Contains(r.Render(), "Table 11") {
		t.Error("render header missing")
	}
}

func TestDynamicComparisonShowsStaticAdvantage(t *testing.T) {
	r, err := DynamicComparison(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 16 {
		t.Fatalf("rows: %d", len(r.Rows))
	}
	// Static flags every golden app (each has warnings).
	if r.StaticApps != 16 {
		t.Errorf("static flagged %d of 16 apps", r.StaticApps)
	}
	// Dynamic crash-only must find SOMETHING (unguarded requests crash
	// offline) but strictly less than static — the §7 claim.
	if r.CrashTotal == 0 {
		t.Error("dynamic crash oracle found nothing — fault injection inert")
	}
	if r.CrashTotal >= r.StaticTotal {
		t.Errorf("crash oracle (%d) should find less than static (%d)", r.CrashTotal, r.StaticTotal)
	}
	// The richer oracle sits between the two.
	if r.RichTotal < r.CrashTotal {
		t.Errorf("rich oracle (%d) below crash-only (%d)", r.RichTotal, r.CrashTotal)
	}
	if r.RichTotal >= r.StaticTotal {
		t.Errorf("rich oracle (%d) should still trail static (%d)", r.RichTotal, r.StaticTotal)
	}
	if !strings.Contains(r.Render(), "TOTAL") {
		t.Error("render missing totals")
	}
}

func TestLintBaselineLosesToNChecker(t *testing.T) {
	r, err := LintComparison()
	if err != nil {
		t.Fatal(err)
	}
	lintRecall := float64(r.LintTP) / float64(r.LintTP+r.LintFN)
	ncRecall := float64(r.NCheckerTP) / float64(r.NCheckerTP+r.NCheckerFN)
	if ncRecall <= lintRecall {
		t.Errorf("NChecker recall %.2f should beat lint recall %.2f", ncRecall, lintRecall)
	}
	if r.NCheckerWarnings <= r.LintWarnings {
		t.Errorf("NChecker should localize more warnings (%d) than app-level lint (%d)",
			r.NCheckerWarnings, r.LintWarnings)
	}
	if lintRecall > 0.75 {
		t.Errorf("lint recall %.2f implausibly high — partial misses should blind it", lintRecall)
	}
	if !strings.Contains(r.Render(), "Recall") {
		t.Error("render missing recall column")
	}
}
