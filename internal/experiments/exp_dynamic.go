package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/interp"
)

// DynamicRow is one golden app's detection outcome under each approach.
type DynamicRow struct {
	App            string
	StaticWarnings int
	CrashFindings  int // VanarSena-style: crash reports only
	RichFindings   int // + hangs, runaway loops, silent failures
}

// DynamicComparisonResult reproduces the paper's §7 argument as an
// experiment: run-time fault injection (the VanarSena/Caiipa approach)
// surfaces only the NPDs that *manifest* — crashes, and with a richer
// oracle hangs and silent failures — while the static analyses flag the
// latent defects (missing timeouts, retry misconfiguration, ignored error
// types) that need a timing/energy fault model to ever show up.
type DynamicComparisonResult struct {
	Rows []DynamicRow
	// Apps flagged by each approach.
	StaticApps, CrashApps, RichApps int
	// Total findings by each approach.
	StaticTotal, CrashTotal, RichTotal int
}

// DynamicComparison runs the 16 golden apps statically and dynamically
// (every entry × every injected scenario).
func DynamicComparison(seed int64) (DynamicComparisonResult, error) {
	nc := core.New()
	var out DynamicComparisonResult
	for _, g := range corpus.GoldenSpecs() {
		app, err := corpus.Build(g.Spec)
		if err != nil {
			return out, err
		}
		row := DynamicRow{App: g.Name}
		row.StaticWarnings = len(nc.ScanApp(app).Reports)
		// Deduplicate across scenarios: a dynamic tool reports one defect
		// per (entry point, manifestation kind), however many fault
		// configurations re-trigger it.
		crashSeen := map[string]bool{}
		richSeen := map[string]bool{}
		for si, s := range interp.Scenarios() {
			rep := interp.RunApp(app, s, seed+int64(si))
			for i := range rep.Runs {
				run := &rep.Runs[i]
				for _, f := range run.Findings(true) {
					crashSeen[run.Entry.Key()+"/"+string(f)] = true
				}
				for _, f := range run.Findings(false) {
					richSeen[run.Entry.Key()+"/"+string(f)] = true
				}
			}
		}
		row.CrashFindings = len(crashSeen)
		row.RichFindings = len(richSeen)
		out.Rows = append(out.Rows, row)
		out.StaticTotal += row.StaticWarnings
		out.CrashTotal += row.CrashFindings
		out.RichTotal += row.RichFindings
		if row.StaticWarnings > 0 {
			out.StaticApps++
		}
		if row.CrashFindings > 0 {
			out.CrashApps++
		}
		if row.RichFindings > 0 {
			out.RichApps++
		}
	}
	return out, nil
}

// Render formats the comparison.
func (r DynamicComparisonResult) Render() string {
	var b strings.Builder
	b.WriteString("§7 comparison: static NChecker vs. run-time fault injection (16 golden apps,\n")
	b.WriteString("               4 injected scenarios per entry point)\n")
	rows := make([][]string, 0, len(r.Rows)+1)
	for _, row := range r.Rows {
		rows = append(rows, []string{row.App,
			fmt.Sprintf("%d", row.StaticWarnings),
			fmt.Sprintf("%d", row.CrashFindings),
			fmt.Sprintf("%d", row.RichFindings)})
	}
	rows = append(rows, []string{"TOTAL",
		fmt.Sprintf("%d (%d apps)", r.StaticTotal, r.StaticApps),
		fmt.Sprintf("%d (%d apps)", r.CrashTotal, r.CrashApps),
		fmt.Sprintf("%d (%d apps)", r.RichTotal, r.RichApps)})
	b.WriteString(table([]string{"App", "Static warnings", "Dynamic (crash-only)", "Dynamic (rich oracle)"}, rows))
	b.WriteString("Latent NPDs (no timeout, retry misconfiguration, ignored error types) never\n")
	b.WriteString("produce a crash report; they require the static analyses — the paper's §7 point.\n")
	return b.String()
}
