package experiments

import (
	"fmt"
	"strings"

	"repro/internal/corpus"
	"repro/internal/fixer"
	"repro/internal/userstudy"
)

// Table10Row is one user-study NPD with its mechanical verification.
type Table10Row struct {
	Name       string
	NPD        string
	CorrectFix string
	// AutoFixed reports that internal/fixer applied the suggestion and a
	// re-scan showed the app warning-free.
	AutoFixed bool
	Applied   int
}

// Table10Result reproduces Table 10 and adds the fixer verification.
type Table10Result struct {
	Rows []Table10Row
}

// Table10 builds each study app, runs the fixer, and re-verifies.
func Table10() (Table10Result, error) {
	var out Table10Result
	for _, ua := range corpus.UserStudySpecs() {
		app, err := corpus.Build(ua.Spec)
		if err != nil {
			return out, err
		}
		f := fixer.New()
		res, err := f.FixAll(app, 60)
		row := Table10Row{Name: ua.Name, NPD: ua.NPD, CorrectFix: ua.Fixes}
		if err == nil {
			row.AutoFixed = res.Remaining == 0
			row.Applied = res.Applied
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Render formats the table.
func (r Table10Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		fixed := "yes"
		if !row.AutoFixed {
			fixed = "NO"
		}
		rows[i] = []string{row.Name, row.NPD, row.CorrectFix,
			fmt.Sprintf("%s (%d patches)", fixed, row.Applied)}
	}
	return "Table 10: user-study NPDs, correct fixes, and mechanical fix verification\n" +
		table([]string{"Name", "NPD", "Correct fix", "Auto-fixed"}, rows)
}

// Figure10Row is one per-NPD fix-time summary.
type Figure10Row struct {
	App     string
	MeanMin float64
	CI95    float64
}

// Figure10Result reproduces Figure 10: fix times per NPD with 95%
// confidence intervals, overall mean, and the hard-case count.
type Figure10Result struct {
	Rows            []Figure10Row
	OverallMean     float64
	OverallCI       float64
	HardCaseCorrect int
}

// Figure10 runs the calibrated user-study simulation.
func Figure10(seed int64) Figure10Result {
	res := userstudy.Simulate(seed)
	var out Figure10Result
	for _, app := range userstudy.Figure10Apps() {
		m, ci := userstudy.MeanCI(res.ByApp(app))
		out.Rows = append(out.Rows, Figure10Row{App: app, MeanMin: m, CI95: ci})
	}
	out.OverallMean, out.OverallCI = res.OverallMeanCI()
	out.HardCaseCorrect = res.HardCaseCorrect()
	return out
}

// Render formats the figure.
func (r Figure10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10: fix time per NPD (simulated cohort of 20 developers)\n")
	for _, row := range r.Rows {
		bar := strings.Repeat("#", int(row.MeanMin*10))
		fmt.Fprintf(&b, "  %-12s %4.2f ± %.2f min %s\n", row.App, row.MeanMin, row.CI95, bar)
	}
	fmt.Fprintf(&b, "  overall      %4.2f ± %.2f min (paper: 1.7 ± 0.14)\n", r.OverallMean, r.OverallCI)
	fmt.Fprintf(&b, "  hard case (retried exception) fixed by %d of %d volunteers\n",
		r.HardCaseCorrect, userstudy.NumDevelopers)
	return b.String()
}
