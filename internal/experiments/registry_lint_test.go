package experiments

import (
	"testing"

	"repro/internal/apimodel"
	"repro/internal/checkers"
	"repro/internal/corpus"
	"repro/internal/report"
)

// TestCheckerRegistryCompleteness lints the eight-family checker
// registry end to end: every family owns a pipeline stage (the handle
// the -timings rows and the nchecker_checker_* metrics key off), a
// non-empty cause set drawn from report.AllCauses — which the families
// partition exactly, each cause owned by exactly one family — every
// cause carries an impact and a fix suggestion, the generated corpus's
// ground truth labels at least one real defect per family, and the
// corpus scan emits at least one warning per family. A new family (or a
// new cause) cannot land without its emitter, oracle entry, report
// category, and metrics hook tripping this test.
func TestCheckerRegistryCompleteness(t *testing.T) {
	all := map[report.Cause]bool{}
	for _, c := range report.AllCauses() {
		all[c] = true
	}
	owned := map[report.Cause]int{}
	for f := 1; f <= checkers.NumCheckerFamilies; f++ {
		stage := checkers.StageOfFamily(f)
		if stage == "" {
			t.Errorf("family %d: no pipeline stage", f)
			continue
		}
		if got := checkers.FamilyOfStage(stage); got != f {
			t.Errorf("family %d: stage %q maps back to family %d", f, stage, got)
		}
		causes := checkers.FamilyCauses(f)
		if len(causes) == 0 {
			t.Errorf("family %d (%s): no causes", f, stage)
		}
		for _, s := range causes {
			c := report.Cause(s)
			if !all[c] {
				t.Errorf("family %d: cause %q not in report.AllCauses", f, s)
			}
			if prev, dup := owned[c]; dup {
				t.Errorf("cause %q owned by families %d and %d", s, prev, f)
			}
			owned[c] = f
			if len(report.Impacts(c)) == 0 {
				t.Errorf("cause %q: no impact category", s)
			}
			if report.Suggest(c, report.Context{}, nil) == "" {
				t.Errorf("cause %q: no fix suggestion", s)
			}
		}
	}
	for _, c := range report.AllCauses() {
		if _, ok := owned[c]; !ok {
			t.Errorf("cause %q owned by no checker family", c)
		}
	}
	if t.Failed() {
		return // the corpus sweep below keys off the ownership table
	}

	// Ground truth and emitters: the canonical corpus must label at least
	// one real defect per family, and the scan must warn for each family.
	cs, err := DefaultScan()
	if err != nil {
		t.Fatalf("DefaultScan: %v", err)
	}
	reg := apimodel.NewRegistry()
	realByFam := map[int]int{}
	gotByFam := map[int]int{}
	for i := range cs.Apps {
		at := corpus.OracleApp(reg, cs.Apps[i].Spec)
		for c, n := range at.RealByCause {
			realByFam[owned[c]] += n
		}
		for j := range cs.Apps[i].Reports {
			gotByFam[owned[cs.Apps[i].Reports[j].Cause]]++
		}
	}
	for f := 1; f <= checkers.NumCheckerFamilies; f++ {
		if realByFam[f] == 0 {
			t.Errorf("family %d (%s): corpus ground truth labels no real defect — emitter or oracle missing", f, checkers.StageOfFamily(f))
		}
		if gotByFam[f] == 0 {
			t.Errorf("family %d (%s): corpus scan emits no warning", f, checkers.StageOfFamily(f))
		}
	}
}
