package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apimodel"
)

// Table6Row is one NPD-cause row of Table 6.
type Table6Row struct {
	Cause     string
	Condition string
	EvalApps  int
	BuggyApps int
}

// Table6Result reproduces Table 6: the percentage of buggy apps per NPD
// cause across the corpus, under the paper's per-cause evaluation
// conditions.
type Table6Result struct {
	Rows          []Table6Row
	TotalApps     int
	TotalWarnings int
	BuggyTotal    int
}

// Table6 aggregates the corpus scan.
func Table6(cs *CorpusScan) Table6Result {
	reg := apimodel.NewRegistry()
	r := Table6Result{TotalApps: len(cs.Apps)}
	var connEval, connBuggy int
	var toEval, toBuggy int
	var retryEval, retryBuggy, overBuggy int
	var notifEval, notifBuggy int
	var respEval, respBuggy int
	for i := range cs.Apps {
		st := cs.Apps[i].Stats
		if st.Requests > 0 {
			connEval++
			if st.MissConnCheck == st.Requests {
				connBuggy++ // never checks connectivity
			}
			toEval++
			if st.MissTimeout == st.Requests {
				toBuggy++ // never sets timeouts
			}
		}
		if usesRetryLib(reg, st) {
			retryEval++
			if st.RetryEvalRequests > 0 && st.MissRetryConfig == st.RetryEvalRequests {
				retryBuggy++ // never sets retry APIs
			}
			if st.OverRetryService+st.OverRetryPost > 0 {
				overBuggy++
			}
		}
		if st.UserRequests > 0 {
			notifEval++
			if st.UserRequestsNoNotif == st.UserRequests {
				notifBuggy++ // never shows failure notifications
			}
		}
		if usesRespLib(reg, st) {
			respEval++
			if st.RespMissCheck > 0 {
				respBuggy++
			}
		}
	}
	r.Rows = []Table6Row{
		{"Missed conn. checks", "All apps", connEval, connBuggy},
		{"Missed timeout APIs", "Use libs that have timeout APIs", toEval, toBuggy},
		{"Missed retry APIs", "Use libs that have retry APIs", retryEval, retryBuggy},
		{"Over retries", "Use libs that have retry APIs", retryEval, overBuggy},
		{"Missed failure notifications", "Include user-initiated requests", notifEval, notifBuggy},
		{"Missed response checks", "Use libs that have resp. check APIs", respEval, respBuggy},
	}
	r.TotalWarnings = cs.TotalWarnings()
	r.BuggyTotal = cs.BuggyApps()
	return r
}

// Render formats the table.
func (r Table6Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Cause, row.Condition,
			fmt.Sprintf("%d", row.EvalApps),
			fmt.Sprintf("%d (%s)", row.BuggyApps, strings.TrimSpace(pct(row.BuggyApps, row.EvalApps))),
		}
	}
	head := fmt.Sprintf("Table 6: buggy apps per NPD cause — %d NPDs across %d of %d apps\n",
		r.TotalWarnings, r.BuggyTotal, r.TotalApps)
	return head + table([]string{"NPD cause", "Eval. condition", "#Eval apps", "#Buggy apps (%)"}, rows)
}

// Table7Result reproduces Table 7: evaluated apps per library.
type Table7Result struct {
	Native, Volley, AsyncHTTP, Basic, OkHttp int
	Total                                    int
}

// Table7 counts library usage across the corpus.
func Table7(cs *CorpusScan) Table7Result {
	r := Table7Result{Total: len(cs.Apps)}
	for i := range cs.Apps {
		native := false
		for _, k := range cs.Apps[i].Stats.LibsUsed {
			switch k {
			case apimodel.LibHttpURL, apimodel.LibApache:
				native = true
			case apimodel.LibVolley:
				r.Volley++
			case apimodel.LibAsyncHTTP:
				r.AsyncHTTP++
			case apimodel.LibBasic:
				r.Basic++
			case apimodel.LibOkHttp:
				r.OkHttp++
			}
		}
		if native {
			r.Native++
		}
	}
	return r
}

// Render formats the table.
func (r Table7Result) Render() string {
	rows := [][]string{
		{"Native (HttpURLConnection/Apache)", fmt.Sprintf("%d", r.Native)},
		{"Volley", fmt.Sprintf("%d", r.Volley)},
		{"Android Async Http", fmt.Sprintf("%d", r.AsyncHTTP)},
		{"Basic Http", fmt.Sprintf("%d", r.Basic)},
		{"OkHttp", fmt.Sprintf("%d", r.OkHttp)},
	}
	return fmt.Sprintf("Table 7: evaluated apps (%d) and their libraries\n", r.Total) +
		table([]string{"Lib used", "#Apps"}, rows)
}

// Table8Result reproduces Table 8: apps with inappropriate retry
// behaviours among retry-capable-library users, and the share caused by
// library defaults.
type Table8Result struct {
	EvalApps            int
	NoRetryActivityApps int
	OverServiceApps     int
	OverServiceDefault  float64 // fraction of over-retry-service warnings from defaults
	OverPostApps        int
	OverPostDefault     float64
}

// Table8 aggregates retry behaviour.
func Table8(cs *CorpusScan) Table8Result {
	reg := apimodel.NewRegistry()
	var r Table8Result
	var svcTotal, svcDefault, postTotal, postDefault int
	for i := range cs.Apps {
		st := cs.Apps[i].Stats
		if !usesRetryLib(reg, st) {
			continue
		}
		r.EvalApps++
		if st.NoRetryTimeSensitive > 0 {
			r.NoRetryActivityApps++
		}
		if st.OverRetryService > 0 {
			r.OverServiceApps++
		}
		if st.OverRetryPost > 0 {
			r.OverPostApps++
		}
		svcTotal += st.OverRetryService
		svcDefault += st.OverRetryServiceDefault
		postTotal += st.OverRetryPost
		postDefault += st.OverRetryPostDefault
	}
	if svcTotal > 0 {
		r.OverServiceDefault = float64(svcDefault) / float64(svcTotal)
	}
	if postTotal > 0 {
		r.OverPostDefault = float64(postDefault) / float64(postTotal)
	}
	return r
}

// Render formats the table.
func (r Table8Result) Render() string {
	rows := [][]string{
		{"No retry in Activities", pct(r.NoRetryActivityApps, r.EvalApps), "0%"},
		{"Over retry in Services", pct(r.OverServiceApps, r.EvalApps),
			fmt.Sprintf("%.0f%%", 100*r.OverServiceDefault)},
		{"Over retry in POST requests", pct(r.OverPostApps, r.EvalApps),
			fmt.Sprintf("%.0f%%", 100*r.OverPostDefault)},
	}
	return fmt.Sprintf("Table 8: inappropriate retry behaviours (over %d retry-lib apps)\n", r.EvalApps) +
		table([]string{"NPD cause", "Apps(%)", "Default behavior"}, rows)
}

// CDFSeries is one empirical CDF.
type CDFSeries struct {
	Name   string
	Ratios []float64 // per-app miss ratios in (0,1)
}

// At evaluates the CDF at x.
func (s CDFSeries) At(x float64) float64 { return cdfAt(s.Ratios, x) }

// Points returns the CDF's (x, y) points.
func (s CDFSeries) Points() (xs, ys []float64) { return cdf(s.Ratios) }

// Figure8Result reproduces Figure 8: among apps that invoke the config
// API somewhere but miss it elsewhere, the CDF of the per-app ratio of
// requests missing connectivity checks (red) and timeouts (blue).
type Figure8Result struct {
	ConnCheck CDFSeries
	Timeout   CDFSeries
}

// Figure8 extracts the partial-missing apps from the corpus scan.
func Figure8(cs *CorpusScan) Figure8Result {
	var r Figure8Result
	r.ConnCheck.Name = "conn. check API"
	r.Timeout.Name = "timeout API"
	for i := range cs.Apps {
		st := cs.Apps[i].Stats
		if st.Requests == 0 {
			continue
		}
		if st.MissConnCheck > 0 && st.MissConnCheck < st.Requests {
			r.ConnCheck.Ratios = append(r.ConnCheck.Ratios, float64(st.MissConnCheck)/float64(st.Requests))
		}
		if st.MissTimeout > 0 && st.MissTimeout < st.Requests {
			r.Timeout.Ratios = append(r.Timeout.Ratios, float64(st.MissTimeout)/float64(st.Requests))
		}
	}
	return r
}

// Render prints both CDFs at decile points.
func (r Figure8Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 8: CDF of per-app ratio of requests missing the config API\n")
	b.WriteString("          (apps that set the API somewhere but miss it elsewhere)\n")
	renderCDF(&b, r.ConnCheck)
	renderCDF(&b, r.Timeout)
	return b.String()
}

func renderCDF(b *strings.Builder, s CDFSeries) {
	fmt.Fprintf(b, "  %s (%d apps):\n    ratio:", s.Name, len(s.Ratios))
	for x := 0.1; x <= 1.001; x += 0.1 {
		fmt.Fprintf(b, " %4.1f", x)
	}
	b.WriteString("\n    CDF:  ")
	for x := 0.1; x <= 1.001; x += 0.1 {
		fmt.Fprintf(b, " %4.2f", s.At(x))
	}
	b.WriteByte('\n')
}

// Figure9Result reproduces Figure 9: CDF of the per-app ratio of user
// requests missing failure notifications, among apps that notify somewhere
// but not everywhere.
type Figure9Result struct {
	Notif CDFSeries
	// Callback-style statistics (§5.2.3): share of requests with
	// explicit vs. implicit callbacks that have notifications, and the
	// fraction of apps ignoring error types.
	ExplicitNotifiedPct float64
	ImplicitNotifiedPct float64
	ErrorTypeIgnoredPct float64
}

// Figure9 extracts the notification CDF and callback statistics.
func Figure9(cs *CorpusScan) Figure9Result {
	var r Figure9Result
	r.Notif.Name = "failure notification"
	var expl, explNotif, impl, implNotif int
	var errCb, errChecked, errCbApps, errCheckedApps int
	for i := range cs.Apps {
		st := cs.Apps[i].Stats
		if st.UserRequests > 0 && st.UserRequestsNoNotif > 0 && st.UserRequestsNoNotif < st.UserRequests {
			r.Notif.Ratios = append(r.Notif.Ratios, float64(st.UserRequestsNoNotif)/float64(st.UserRequests))
		}
		expl += st.ExplicitCallbackReqs
		explNotif += st.ExplicitCallbackNotified
		impl += st.ImplicitCallbackReqs
		implNotif += st.ImplicitCallbackNotified
		errCb += st.ErrorCallbacks
		errChecked += st.ErrorTypeChecked
		if st.ErrorCallbacks > 0 {
			errCbApps++
			if st.ErrorTypeChecked > 0 {
				errCheckedApps++
			}
		}
	}
	if expl > 0 {
		r.ExplicitNotifiedPct = 100 * float64(explNotif) / float64(expl)
	}
	if impl > 0 {
		r.ImplicitNotifiedPct = 100 * float64(implNotif) / float64(impl)
	}
	if errCbApps > 0 {
		r.ErrorTypeIgnoredPct = 100 * float64(errCbApps-errCheckedApps) / float64(errCbApps)
	}
	return r
}

// Render prints the CDF and the callback statistics.
func (r Figure9Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 9: CDF of per-app ratio of user requests missing failure notifications\n")
	renderCDF(&b, r.Notif)
	fmt.Fprintf(&b, "  requests notified — explicit callbacks: %.0f%%, implicit: %.0f%%\n",
		r.ExplicitNotifiedPct, r.ImplicitNotifiedPct)
	fmt.Fprintf(&b, "  apps ignoring error types: %.0f%%\n", r.ErrorTypeIgnoredPct)
	return b.String()
}
