package experiments

import (
	"repro/internal/apimodel"
	"repro/internal/report"
)

// Table4Result reproduces Table 4: each library's ability to tolerate the
// NPD causes — "auto" (⋆, handled automatically) vs. "api" (©, an API
// exists but the developer must call it) vs. "–" (nothing).
type Table4Result struct {
	Libraries []string
	RowNames  []string
	// Cells[row][lib] ∈ {"auto", "api", "-"}.
	Cells [][]string
}

// Table4 derives the matrix from the annotation registry.
func Table4() Table4Result {
	reg := apimodel.NewRegistry()
	libs := reg.Libraries()
	r := Table4Result{}
	for _, l := range libs {
		r.Libraries = append(r.Libraries, l.Name)
	}
	addRow := func(name string, cell func(l *apimodel.Library) string) {
		r.RowNames = append(r.RowNames, name)
		row := make([]string, len(libs))
		for i, l := range libs {
			row[i] = cell(l)
		}
		r.Cells = append(r.Cells, row)
	}
	hasRetryAPI := func(l *apimodel.Library) bool {
		for _, c := range l.Configs {
			if c.Kind == apimodel.ConfigRetry {
				return true
			}
		}
		return false
	}
	addRow("No connectivity check", func(l *apimodel.Library) string {
		return "api" // every library leaves connectivity checks to the app
	})
	addRow("No retry on transient error", func(l *apimodel.Library) string {
		if l.Defaults.AutoRetryTransient {
			return "auto"
		}
		if hasRetryAPI(l) {
			return "api"
		}
		return "api"
	})
	addRow("Over retry", func(l *apimodel.Library) string {
		return "api" // suppressing retries always needs an explicit call
	})
	addRow("No timeout", func(l *apimodel.Library) string {
		if l.Defaults.TimeoutMs > 0 {
			return "auto"
		}
		return "api"
	})
	addRow("No/misleading failure notification", func(l *apimodel.Library) string {
		return "api"
	})
	addRow("No invalid response check", func(l *apimodel.Library) string {
		if l.Defaults.AutoRespCheck {
			return "auto"
		}
		return "api"
	})
	addRow("No reconnection on net switch", func(l *apimodel.Library) string {
		return "api"
	})
	addRow("No auto failure recovery", func(l *apimodel.Library) string {
		return "api"
	})
	return r
}

// Render formats the matrix (auto=⋆, api=©, matching the paper's legend).
func (r Table4Result) Render() string {
	header := append([]string{"NPD cause"}, r.Libraries...)
	rows := make([][]string, len(r.RowNames))
	for i, name := range r.RowNames {
		row := []string{name}
		for _, cell := range r.Cells[i] {
			switch cell {
			case "auto":
				row = append(row, "*")
			case "api":
				row = append(row, "o")
			default:
				row = append(row, "-")
			}
		}
		rows[i] = row
	}
	return "Table 4: Libraries' abilities to tolerate NPDs (* = automatic, o = API provided)\n" +
		table(header, rows)
}

// Table5Result reproduces Table 5: the API-misuse patterns NChecker
// detects, with the causes they map to and an example API.
type Table5Result struct {
	Rows [][3]string // pattern, cause, example
}

// Table5 returns the pattern catalogue.
func Table5() Table5Result {
	return Table5Result{Rows: [][3]string{
		{"Miss request setting APIs", string(report.CauseNoConnectivityCheck),
			"no getActiveNetworkInfo before the request"},
		{"Miss request setting APIs", string(report.CauseNoRetryConfig),
			"no setMaxRetries for the sent request"},
		{"Miss request setting APIs", string(report.CauseNoTimeout),
			"no setReadTimeout for the sent request"},
		{"Improper API parameters", string(report.CauseOverRetryService),
			"retries > 0 in an Android Service"},
		{"Improper API parameters", string(report.CauseOverRetryPost),
			"retries > 0 for a POST request"},
		{"Improper API parameters", string(report.CauseNoRetryTimeSensitive),
			"retries == 0 for a user-initiated request"},
		{"No/implicit error message", string(report.CauseNoFailureNotification),
			"no Toast.show in onErrorResponse of a user request"},
		{"No/implicit error message", string(report.CauseNoErrorTypeCheck),
			"error object's type never inspected"},
		{"Miss response checking APIs", string(report.CauseNoResponseCheck),
			"no isSuccessful() before reading the response body"},
		{"Customized retry loop", string(report.CauseAggressiveRetryLoop),
			"retry loop without backoff between attempts"},
	}}
}

// Render formats the pattern table.
func (r Table5Result) Render() string {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row[0], row[1], row[2]}
	}
	return "Table 5: API misuse patterns and examples\n" +
		table([]string{"API misuse pattern", "NPD cause", "Example of identifying misuse"}, rows)
}
