package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/apk"
	"repro/internal/core"
)

// TestValidationPartitionsEveryWarning is the tentpole acceptance
// criterion on the golden corpus: -validate puts every warning in exactly
// one verdict bucket, the buckets are all inhabited (the corpus has real
// defects, false positives, and — via the adversarial shapes — warnings
// only dynamic replay can refuse to judge is not guaranteed, but
// confirmed and unconfirmed must both appear), and the oracle
// cross-reference finds known FPs among the unconfirmed.
func TestValidationPartitionsEveryWarning(t *testing.T) {
	v, err := ValidationBreakdown()
	if err != nil {
		t.Fatalf("ValidationBreakdown: %v", err)
	}
	if len(v.Rows) != 16 {
		t.Fatalf("breakdown covers %d apps, want the 16 goldens", len(v.Rows))
	}
	var tot ValidationRow
	for _, r := range v.Rows {
		if r.Confirmed+r.Unconfirmed+r.NotValidated != r.Warnings {
			t.Errorf("%s: verdicts %d+%d+%d do not partition %d warnings",
				r.App, r.Confirmed, r.Unconfirmed, r.NotValidated, r.Warnings)
		}
		tot.Warnings += r.Warnings
		tot.Confirmed += r.Confirmed
		tot.Unconfirmed += r.Unconfirmed
	}
	if tot.Warnings == 0 || tot.Confirmed == 0 || tot.Unconfirmed == 0 {
		t.Errorf("degenerate breakdown: %+v", tot)
	}
	if v.KnownFPs == 0 {
		t.Error("oracle reports no known FPs on the goldens; cross-reference is vacuous")
	}
	if v.FPsUnconfirmed == 0 {
		t.Error("validation caught none of the oracle's false positives")
	}
	if v.FPsUnconfirmed > v.KnownFPs {
		t.Errorf("caught %d FPs out of %d known", v.FPsUnconfirmed, v.KnownFPs)
	}
}

// TestValidationBreakdownSnapshot locks the rendered breakdown — verdict
// counts and the FP-reduction line — against a committed snapshot.
// Refresh with
//
//	go test ./internal/experiments -run TestValidationBreakdownSnapshot -update-golden
func TestValidationBreakdownSnapshot(t *testing.T) {
	v, err := ValidationBreakdown()
	if err != nil {
		t.Fatalf("ValidationBreakdown: %v", err)
	}
	got := v.Render()
	path := filepath.Join("testdata", "golden_validation.txt")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing snapshot (run with -update-golden to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("validation breakdown changed; run with -update-golden if intended.\n%s",
			firstDiff(string(want), got))
	}
}

// TestValidatedReportsIdenticalAcrossModesAndWorkers is the satellite-4
// differential: the rendered golden reports — now including verdict and
// note — are byte-identical between full and targeted mode and across
// worker counts. Replay verdicts must be a function of the app, never of
// the traversal strategy or scheduling.
func TestValidatedReportsIdenticalAcrossModesAndWorkers(t *testing.T) {
	base := goldenReportTextWith(t, core.Options{Workers: 1, Validate: true})
	variants := map[string]core.Options{
		"targeted":  {Workers: 1, Validate: true, Mode: core.ModeTargeted},
		"workers=4": {Workers: 4, Validate: true},
	}
	for name, opts := range variants {
		if got := goldenReportTextWith(t, opts); got != base {
			t.Errorf("%s validated reports differ from full/workers=1:\n%s", name, firstDiff(base, got))
		}
	}
}

// TestValidatedLazyPathMatchesFull routes the goldens through the byte
// container in targeted mode — the path where classes are decoded lazily
// and the validate stage must materialize the app before replaying — and
// requires report-level equality (verdicts included) with the in-memory
// full scan.
func TestValidatedLazyPathMatchesFull(t *testing.T) {
	apps := mustGoldens(t)
	full := core.NewWithOptions(core.Options{Workers: 1, Validate: true})
	lazy := core.NewWithOptions(core.Options{Workers: 1, Validate: true, Mode: core.ModeTargeted})
	for _, a := range apps {
		data, err := apk.Encode(a.App)
		if err != nil {
			t.Fatalf("%s: encode: %v", a.Name, err)
		}
		fres := full.ScanApp(a.App)
		lres, err := lazy.ScanBytes(data)
		if err != nil {
			t.Fatalf("%s: targeted ScanBytes: %v", a.Name, err)
		}
		if lres.Incomplete {
			t.Fatalf("%s: targeted validated scan degraded: %v", a.Name, lres.Err())
		}
		if !reflect.DeepEqual(fres.Reports, lres.Reports) {
			t.Errorf("%s: lazy targeted validated reports differ from full", a.Name)
		}
	}
}
