// Package experiments regenerates every table and figure of the paper's
// evaluation from this repository's own substrates: the §2 study dataset,
// the library annotation registry, the network simulator, the synthetic
// 285-app corpus, the 16 golden apps, the automated fixer, and the
// user-study model. Each experiment returns a structured result with a
// Render method producing the rows/series the paper reports;
// cmd/experiments prints them all and bench_test.go times them.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/apimodel"
	"repro/internal/checkers"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/report"
)

// Seed is the canonical evaluation seed.
const Seed = 2016

// AppResult is one scanned corpus app. Incomplete marks a degraded scan
// (a stage panicked or the per-scan deadline expired); its partial stats
// and reports are kept and Err summarizes what failed, so one pathological
// app never aborts a corpus run.
type AppResult struct {
	Name       string
	Golden     bool
	Spec       corpus.AppSpec
	Stats      checkers.Stats
	Reports    []report.Report
	Incomplete bool
	Err        string
	Diag       checkers.Diagnostics
}

// CorpusScan holds the full corpus scan, the input to Tables 6–8 and
// Figures 8–9.
type CorpusScan struct {
	Seed int64
	Apps []AppResult
}

// ScanCorpus generates the corpus for the seed and scans every app with
// default options.
func ScanCorpus(seed int64) (*CorpusScan, error) {
	return ScanCorpusWith(seed, core.Options{})
}

// ScanCorpusWith generates the corpus for the seed and scans every app
// with the given analysis options.
func ScanCorpusWith(seed int64, opts core.Options) (*CorpusScan, error) {
	apps, err := corpus.GenerateCorpus(seed)
	if err != nil {
		return nil, err
	}
	cs := ScanApps(apps, opts)
	cs.Seed = seed
	return cs, nil
}

// ScanApps scans the given corpus apps. Opts.Workers (0 = GOMAXPROCS)
// bounds the app-level pool: whole apps are scanned concurrently while
// each scan's internal pipeline runs single-threaded, which avoids
// oversubscribing the pool for this many small apps. Results keep the
// corpus order, so output is deterministic regardless of scheduling.
func ScanApps(apps []*corpus.CorpusApp, opts core.Options) *CorpusScan {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(apps) {
		workers = len(apps)
	}
	scanOpts := opts
	scanOpts.Workers = 1
	nc := core.NewWithOptions(scanOpts)
	out := &CorpusScan{Apps: make([]AppResult, len(apps))}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				a := apps[i]
				res := nc.ScanApp(a.App)
				r := AppResult{
					Name: a.Name, Golden: a.Golden, Spec: a.Spec,
					Stats: res.Stats, Reports: res.Reports, Diag: res.Diagnostics,
				}
				// A degraded scan (stage panic, expired deadline) is
				// recorded per app — the corpus run keeps going.
				if err := res.Err(); err != nil {
					r.Incomplete = true
					r.Err = err.Error()
				}
				out.Apps[i] = r
			}
		}()
	}
	for i := range apps {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

var (
	scanOnce   sync.Once
	scanCached *CorpusScan
	scanErr    error
)

// DefaultScan returns the canonical-seed corpus scan, computed once per
// process.
func DefaultScan() (*CorpusScan, error) {
	scanOnce.Do(func() {
		scanCached, scanErr = ScanCorpus(Seed)
	})
	return scanCached, scanErr
}

// TotalWarnings sums warnings across the corpus.
func (cs *CorpusScan) TotalWarnings() int {
	n := 0
	for i := range cs.Apps {
		n += len(cs.Apps[i].Reports)
	}
	return n
}

// IncompleteApps counts apps whose scan was degraded (partial results).
func (cs *CorpusScan) IncompleteApps() int {
	n := 0
	for i := range cs.Apps {
		if cs.Apps[i].Incomplete {
			n++
		}
	}
	return n
}

// FailedAppNames lists the degraded apps with their failure summaries, in
// corpus order.
func (cs *CorpusScan) FailedAppNames() []string {
	var out []string
	for i := range cs.Apps {
		if cs.Apps[i].Incomplete {
			out = append(out, fmt.Sprintf("%s: %s", cs.Apps[i].Name, cs.Apps[i].Err))
		}
	}
	return out
}

// BuggyApps counts apps with at least one warning.
func (cs *CorpusScan) BuggyApps() int {
	n := 0
	for i := range cs.Apps {
		if len(cs.Apps[i].Reports) > 0 {
			n++
		}
	}
	return n
}

// Diagnostics aggregates every app's scan diagnostics (stage-wise sums of
// wall time, work volumes, and cache counters).
func (cs *CorpusScan) Diagnostics() checkers.Diagnostics {
	var agg checkers.Diagnostics
	for i := range cs.Apps {
		d := cs.Apps[i].Diag
		if i == 0 {
			agg.Workers = d.Workers
		}
		agg.Merge(d)
	}
	return agg
}

// TimingRows renders the corpus scan's aggregate per-stage timing table —
// the observability companion to Tables 6–8.
func (cs *CorpusScan) TimingRows() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Corpus-scan timing (%d apps, seed %d):\n", len(cs.Apps), cs.Seed)
	if n := cs.IncompleteApps(); n > 0 {
		fmt.Fprintf(&b, "  DEGRADED: %d of %d app scans incomplete\n", n, len(cs.Apps))
		for _, line := range cs.FailedAppNames() {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	b.WriteString(cs.Diagnostics().Render())
	return b.String()
}

// usesRetryLib reports whether the app references a retry-capable library.
func usesRetryLib(reg *apimodel.Registry, st checkers.Stats) bool {
	for _, k := range st.LibsUsed {
		if l := reg.Library(k); l != nil && l.HasRetryAPIs {
			return true
		}
	}
	return false
}

// usesRespLib reports whether the app references a response-check library.
func usesRespLib(reg *apimodel.Registry, st checkers.Stats) bool {
	for _, k := range st.LibsUsed {
		if l := reg.Library(k); l != nil && l.HasRespCheckAPIs() {
			return true
		}
	}
	return false
}

// pct formats n/d as a percentage.
func pct(n, d int) string {
	if d == 0 {
		return "  –"
	}
	return fmt.Sprintf("%3.0f%%", 100*float64(n)/float64(d))
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// cdf returns (x, y) points of the empirical CDF of values in (0,1].
func cdf(values []float64) (xs, ys []float64) {
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	n := len(sorted)
	for i, v := range sorted {
		xs = append(xs, v)
		ys = append(ys, float64(i+1)/float64(n))
	}
	return xs, ys
}

// cdfAt evaluates the empirical CDF at x.
func cdfAt(values []float64, x float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v <= x {
			n++
		}
	}
	return float64(n) / float64(len(values))
}
