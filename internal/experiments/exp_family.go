package experiments

import (
	"fmt"

	"repro/internal/apimodel"
	"repro/internal/checkers"
	"repro/internal/corpus"
	"repro/internal/report"
)

// FamilyRow is one checker family's accuracy on the oracle-labeled
// corpus: warnings emitted, how many match a real (user-visible) defect,
// and the family's precision/recall against the oracle's real-defect
// counts for its causes.
type FamilyRow struct {
	Family    int
	Stage     string
	Warnings  int
	Correct   int
	FP        int
	FN        int
	Precision float64
	Recall    float64
}

// FamilyResult is the per-family precision/recall breakdown over the
// synthetic corpus — the ablation companion to Table 9. Each warning is
// attributed to the checker family that owns its cause and graded
// against the generator's ground truth per app.
type FamilyResult struct {
	Apps int
	Rows []FamilyRow
}

// FamilyBreakdown grades a corpus scan per checker family. For every app
// it counts emitted warnings by cause, compares them to the oracle's
// real-defect counts (correct = min(got, real); excess warnings are FPs,
// shortfalls FNs), then folds the cause totals into the owning family.
func FamilyBreakdown(cs *CorpusScan) FamilyResult {
	reg := apimodel.NewRegistry()
	famOf := map[report.Cause]int{}
	for f := 1; f <= checkers.NumCheckerFamilies; f++ {
		for _, c := range checkers.FamilyCauses(f) {
			famOf[report.Cause(c)] = f
		}
	}
	type tally struct{ warnings, correct, fp, fn int }
	perFam := map[int]*tally{}
	get := func(f int) *tally {
		if t, ok := perFam[f]; ok {
			return t
		}
		t := &tally{}
		perFam[f] = t
		return t
	}
	for i := range cs.Apps {
		a := &cs.Apps[i]
		got := map[report.Cause]int{}
		for j := range a.Reports {
			got[a.Reports[j].Cause]++
		}
		at := corpus.OracleApp(reg, a.Spec)
		for c, f := range famOf {
			g, r := got[c], at.RealByCause[c]
			if g == 0 && r == 0 {
				continue
			}
			correct := g
			if correct > r {
				correct = r
			}
			t := get(f)
			t.warnings += g
			t.correct += correct
			t.fp += g - correct
			t.fn += r - correct
		}
	}
	out := FamilyResult{Apps: len(cs.Apps)}
	for f := 1; f <= checkers.NumCheckerFamilies; f++ {
		t, ok := perFam[f]
		if !ok {
			t = &tally{}
		}
		row := FamilyRow{Family: f, Stage: checkers.StageOfFamily(f),
			Warnings: t.warnings, Correct: t.correct, FP: t.fp, FN: t.fn}
		if t.warnings > 0 {
			row.Precision = float64(t.correct) / float64(t.warnings)
		}
		if d := t.correct + t.fn; d > 0 {
			row.Recall = float64(t.correct) / float64(d)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// Render formats the breakdown.
func (r FamilyResult) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Family),
			row.Stage,
			fmt.Sprintf("%d", row.Warnings),
			fmt.Sprintf("%d", row.Correct),
			fmt.Sprintf("%d", row.FP),
			fmt.Sprintf("%d", row.FN),
			fmt.Sprintf("%.3f", row.Precision),
			fmt.Sprintf("%.3f", row.Recall),
		})
	}
	head := fmt.Sprintf("Per-family accuracy on the %d-app corpus (oracle-labeled)\n", r.Apps)
	return head + table([]string{"Family", "Checker", "#Warnings", "#Correct", "#FP", "#FN", "Precision", "Recall"}, rows)
}
