package experiments

import (
	"fmt"
	"strings"

	"repro/internal/netsim"
)

// Figure3Series is one curve of Figure 3.
type Figure3Series struct {
	Network string
	Sizes   []int
	Rates   []float64
}

// Figure3Result reproduces Figure 3: success rate of downloading files of
// different sizes with the Volley defaults (2500 ms timeout, one retry)
// under a clean and a 10%-loss 3G link.
type Figure3Result struct {
	Series []Figure3Series
	Trials int
}

// Figure3 runs the download experiment.
func Figure3(trials int, seed int64) Figure3Result {
	client := netsim.DefaultVolley()
	sizes := netsim.FileSizes()
	out := Figure3Result{Trials: trials}
	for _, p := range []netsim.Profile{netsim.ThreeGLossy(0), netsim.ThreeGLossy(0.10)} {
		s := Figure3Series{Network: p.Name, Sizes: sizes}
		for i, size := range sizes {
			s.Rates = append(s.Rates, client.SuccessRate(p, size, trials, seed+int64(i)))
		}
		out.Series = append(out.Series, s)
	}
	return out
}

// Render prints the two series as the paper's rows.
func (r Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: download success rate with default Volley parameters (%d trials/point)\n", r.Trials)
	b.WriteString("  size:    ")
	for _, size := range r.Series[0].Sizes {
		fmt.Fprintf(&b, "%6s", netsim.SizeLabel(size))
	}
	b.WriteByte('\n')
	for _, s := range r.Series {
		fmt.Fprintf(&b, "  %-24s", s.Network)
		for _, rate := range s.Rates {
			fmt.Fprintf(&b, "%6.2f", rate)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
