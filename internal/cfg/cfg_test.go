package cfg

import (
	"testing"
	"testing/quick"

	"repro/internal/jimple"
)

// diamond builds:
//
//	0: if x == 0 goto 3
//	1: y = 1
//	2: goto 4
//	3: y = 2
//	4: return y
func diamond(t *testing.T) *jimple.Method {
	t.Helper()
	b := jimple.NewBody()
	x := b.Local("x", jimple.TypeInt)
	y := b.Local("y", jimple.TypeInt)
	elseL := b.NewLabel()
	join := b.NewLabel()
	b.If(jimple.BinExpr{Op: jimple.OpEQ, L: x, R: jimple.IntConst{V: 0}}, elseL)
	b.Assign(y, jimple.IntConst{V: 1})
	b.Goto(join)
	b.Bind(elseL)
	b.Assign(y, jimple.IntConst{V: 2})
	b.Bind(join)
	b.Return(y)
	m, err := b.Build(jimple.Sig{Class: "t.T", Name: "d", Ret: jimple.TypeInt}, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

// loopMethod builds a retry-style loop:
//
//	0: ok = 0
//	1: if ok != 0 goto 4   (header)
//	2: ok = call()
//	3: goto 1
//	4: return
func loopMethod(t *testing.T) *jimple.Method {
	t.Helper()
	b := jimple.NewBody()
	ok := b.Local("ok", jimple.TypeInt)
	head := b.NewLabel()
	done := b.NewLabel()
	b.Assign(ok, jimple.IntConst{V: 0})
	b.Bind(head)
	b.If(jimple.BinExpr{Op: jimple.OpNE, L: ok, R: jimple.IntConst{V: 0}}, done)
	b.InvokeAssign(ok, jimple.InvokeStatic, "", jimple.Sig{Class: "t.T", Name: "call", Ret: jimple.TypeInt})
	b.Goto(head)
	b.Bind(done)
	b.Return(nil)
	m, err := b.Build(jimple.Sig{Class: "t.T", Name: "loop", Ret: jimple.TypeVoid}, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return m
}

func TestDiamondEdges(t *testing.T) {
	g := New(diamond(t))
	if g.NumNodes() != 6 { // 5 stmts + exit
		t.Fatalf("NumNodes: %d", g.NumNodes())
	}
	wantSuccs := map[int][]int{0: {3, 1}, 1: {2}, 2: {4}, 3: {4}, 4: {5}}
	for n, want := range wantSuccs {
		got := g.Succs(n)
		if len(got) != len(want) {
			t.Errorf("Succs(%d): got %v want %v", n, got, want)
			continue
		}
		for _, w := range want {
			found := false
			for _, s := range got {
				if s == w {
					found = true
				}
			}
			if !found {
				t.Errorf("Succs(%d) missing %d: %v", n, w, got)
			}
		}
	}
	if len(g.Preds(4)) != 2 {
		t.Errorf("Preds(4): %v", g.Preds(4))
	}
}

func TestDiamondDominators(t *testing.T) {
	g := New(diamond(t))
	idom := g.Dominators()
	// Node 4 (join) is dominated by 0, not by 1 or 3.
	if !Dominates(idom, 0, 4) {
		t.Error("entry should dominate join")
	}
	if Dominates(idom, 1, 4) || Dominates(idom, 3, 4) {
		t.Error("branch arms must not dominate the join")
	}
	if idom[4] != 0 {
		t.Errorf("idom[4] = %d, want 0", idom[4])
	}
}

func TestDiamondPostDominators(t *testing.T) {
	g := New(diamond(t))
	ipdom := g.PostDominators()
	// The join (4) post-dominates everything before it.
	for n := 0; n <= 3; n++ {
		if !Dominates(ipdom, 4, n) {
			t.Errorf("join should post-dominate node %d", n)
		}
	}
}

func TestControlDeps(t *testing.T) {
	g := New(diamond(t))
	deps := g.ControlDeps()
	// Nodes 1,2 (then-arm) and 3 (else-arm) are control dependent on 0.
	for _, n := range []int{1, 2, 3} {
		if !deps[n][0] {
			t.Errorf("node %d should be control dependent on the branch", n)
		}
	}
	// The join is not control dependent on the branch.
	if deps[4][0] {
		t.Error("join must not be control dependent on the branch")
	}
}

func TestNaturalLoops(t *testing.T) {
	g := New(loopMethod(t))
	loops := g.NaturalLoops()
	if len(loops) != 1 {
		t.Fatalf("loops: got %d want 1", len(loops))
	}
	l := loops[0]
	if l.Head != 1 {
		t.Errorf("loop head: got %d want 1", l.Head)
	}
	for _, n := range []int{1, 2, 3} {
		if !l.Contains(n) {
			t.Errorf("loop should contain node %d", n)
		}
	}
	if l.Contains(0) || l.Contains(4) {
		t.Error("loop contains nodes outside the cycle")
	}
	exits := l.ExitEdges(g)
	if len(exits) != 1 || exits[0] != [2]int{1, 4} {
		t.Errorf("ExitEdges: %v", exits)
	}
}

func TestExceptionalEdges(t *testing.T) {
	b := jimple.NewBody()
	e := b.Local("e", "java.io.IOException")
	begin := b.NewLabel()
	end := b.NewLabel()
	handler := b.NewLabel()
	b.Bind(begin)
	b.Invoke(jimple.InvokeStatic, "", jimple.Sig{Class: "t.T", Name: "mayThrow", Ret: jimple.TypeVoid})
	b.Bind(end)
	b.Return(nil)
	b.Bind(handler)
	b.Assign(e, jimple.CaughtExRef{})
	b.Return(nil)
	b.TrapRegion(begin, end, handler, "java.io.IOException")
	m, err := b.Build(jimple.Sig{Class: "t.T", Name: "f", Ret: jimple.TypeVoid}, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := New(m)
	// Statement 0 is inside the trap: must have an edge to the handler (2).
	found := false
	for _, s := range g.Succs(0) {
		if s == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing exceptional edge 0→2; succs(0)=%v", g.Succs(0))
	}
	if !g.IsExceptionalEdge(0, 2) {
		t.Error("edge 0→2 should be flagged exceptional")
	}
	if g.IsExceptionalEdge(0, 1) {
		t.Error("fallthrough edge flagged exceptional")
	}
}

func TestThrowRoutesToHandlerOrExit(t *testing.T) {
	// throw outside any trap goes to exit.
	b := jimple.NewBody()
	e := b.Local("e", "java.lang.RuntimeException")
	b.New(e, "java.lang.RuntimeException")
	b.Throw(e)
	m, err := b.Build(jimple.Sig{Class: "t.T", Name: "g", Ret: jimple.TypeVoid}, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := New(m)
	throwIdx := 2
	succs := g.Succs(throwIdx)
	if len(succs) != 1 || succs[0] != g.Exit() {
		t.Errorf("uncaught throw should go to exit; succs=%v", succs)
	}
}

func TestReachable(t *testing.T) {
	// Code after an unconditional return is unreachable.
	b := jimple.NewBody()
	x := b.Local("x", jimple.TypeInt)
	b.Return(nil)
	b.Assign(x, jimple.IntConst{V: 1})
	b.Return(nil)
	m, err := b.Build(jimple.Sig{Class: "t.T", Name: "h", Ret: jimple.TypeVoid}, true)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	g := New(m)
	r := g.Reachable()
	if !r[0] || r[1] || r[2] {
		t.Errorf("reachability wrong: %v", r)
	}
}

// Property: in any random linear chain with one backward goto, every node
// in the loop body is dominated by the loop head.
func TestQuickLoopDomination(t *testing.T) {
	f := func(rawLen uint8, rawBack uint8) bool {
		n := int(rawLen%8) + 3 // chain length 3..10
		b := jimple.NewBody()
		x := b.Local("x", jimple.TypeInt)
		labels := make([]*jimple.Label, n)
		for i := range labels {
			labels[i] = b.NewLabel()
		}
		headIdx := int(rawBack) % (n - 1)
		done := b.NewLabel()
		for i := 0; i < n; i++ {
			b.Bind(labels[i])
			b.Assign(x, jimple.IntConst{V: int64(i)})
		}
		// Conditional back edge to headIdx, then exit.
		b.If(jimple.BinExpr{Op: jimple.OpLT, L: x, R: jimple.IntConst{V: 100}}, labels[headIdx])
		b.Bind(done)
		b.Return(nil)
		m, err := b.Build(jimple.Sig{Class: "t.T", Name: "q", Ret: jimple.TypeVoid}, true)
		if err != nil {
			return false
		}
		g := New(m)
		idom := g.Dominators()
		for _, l := range g.NaturalLoops() {
			for node := range l.Body {
				if !Dominates(idom, l.Head, node) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
