// Package cfg builds per-method control-flow graphs over the jimple IR and
// provides the classic graph analyses the checkers need: dominators,
// post-dominators, and natural-loop detection. Nodes are statement indexes
// into the method body, so CFG results compose directly with the dataflow
// engines in internal/dataflow.
package cfg

import (
	"sort"

	"repro/internal/jimple"
)

// Graph is the control-flow graph of one method body. Node i corresponds
// to m.Body[i]. Entry is always node 0. Exit is a synthetic node with
// index len(Body), the target of every return/throw-without-handler.
type Graph struct {
	Method *jimple.Method
	succs  [][]int
	preds  [][]int
	// ExceptionalInto[i] is true when the only way to reach node i is via
	// an exceptional (trap) edge; handler heads typically qualify.
	exceptionalEdge map[[2]int]bool
}

// New builds the CFG of m, which must have a body. Exceptional edges are
// added from every statement inside a trap range to the trap handler
// (conservatively: any statement in range may throw).
func New(m *jimple.Method) *Graph {
	n := len(m.Body)
	g := &Graph{
		Method:          m,
		succs:           make([][]int, n+1),
		preds:           make([][]int, n+1),
		exceptionalEdge: make(map[[2]int]bool),
	}
	addEdge := func(from, to int, exceptional bool) {
		for _, s := range g.succs[from] {
			if s == to {
				return
			}
		}
		g.succs[from] = append(g.succs[from], to)
		g.preds[to] = append(g.preds[to], from)
		if exceptional {
			g.exceptionalEdge[[2]int{from, to}] = true
		}
	}
	var scratch []int
	for i, s := range m.Body {
		for _, t := range jimple.BranchTargets(scratch[:0], s) {
			addEdge(i, t, false)
		}
		if jimple.FallsThrough(s) {
			addEdge(i, i+1, false)
		}
		switch s.(type) {
		case *jimple.ReturnStmt:
			addEdge(i, n, false)
		case *jimple.ThrowStmt:
			// A throw reaches its enclosing handler if any, else exit.
			if !inAnyTrap(m, i, addEdge) {
				addEdge(i, n, false)
			}
		}
	}
	// Exceptional edges: every statement in a trap range can transfer to
	// the handler (calls and dereferences may throw).
	for _, t := range m.Traps {
		for i := t.Begin; i < t.End && i < n; i++ {
			addEdge(i, t.Handler, true)
		}
	}
	return g
}

func inAnyTrap(m *jimple.Method, i int, addEdge func(int, int, bool)) bool {
	covered := false
	for _, t := range m.Traps {
		if i >= t.Begin && i < t.End {
			addEdge(i, t.Handler, true)
			covered = true
		}
	}
	return covered
}

// WithoutEdges returns a copy of g lacking the given (from, to) edges.
// Node indexing is unchanged, so statement-indexed dataflow results over
// the pruned graph compose with the original body; nodes left without
// incoming edges simply become unreachable from the entry. Edges not
// present in g are ignored.
func (g *Graph) WithoutEdges(drop [][2]int) *Graph {
	if len(drop) == 0 {
		return g
	}
	dropSet := make(map[[2]int]bool, len(drop))
	for _, e := range drop {
		dropSet[e] = true
	}
	ng := &Graph{
		Method:          g.Method,
		succs:           make([][]int, len(g.succs)),
		preds:           make([][]int, len(g.preds)),
		exceptionalEdge: make(map[[2]int]bool),
	}
	for from, ss := range g.succs {
		for _, to := range ss {
			if dropSet[[2]int{from, to}] {
				continue
			}
			ng.succs[from] = append(ng.succs[from], to)
			ng.preds[to] = append(ng.preds[to], from)
			if g.exceptionalEdge[[2]int{from, to}] {
				ng.exceptionalEdge[[2]int{from, to}] = true
			}
		}
	}
	return ng
}

// NumNodes returns the node count including the synthetic exit node.
func (g *Graph) NumNodes() int { return len(g.succs) }

// Exit returns the synthetic exit node's index.
func (g *Graph) Exit() int { return len(g.succs) - 1 }

// Succs returns the successors of node i. The returned slice is shared;
// callers must not modify it.
func (g *Graph) Succs(i int) []int { return g.succs[i] }

// Preds returns the predecessors of node i. The returned slice is shared.
func (g *Graph) Preds(i int) []int { return g.preds[i] }

// IsExceptionalEdge reports whether from→to is a trap (exception) edge.
func (g *Graph) IsExceptionalEdge(from, to int) bool {
	return g.exceptionalEdge[[2]int{from, to}]
}

// Reachable returns the set of nodes reachable from the entry node.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, g.NumNodes())
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.succs[n] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

// Dominators returns idom, where idom[i] is the immediate dominator of
// node i (idom[0] == 0 for the entry; unreachable nodes get -1). Uses the
// Cooper–Harvey–Kennedy iterative algorithm over a reverse postorder.
func (g *Graph) Dominators() []int {
	return dominators(g.NumNodes(), 0, g.Succs, g.Preds)
}

// PostDominators returns ipdom over the reversed graph rooted at the
// synthetic exit node. Nodes that cannot reach the exit get -1.
func (g *Graph) PostDominators() []int {
	return dominators(g.NumNodes(), g.Exit(), g.Preds, g.Succs)
}

func dominators(n, root int, succs, preds func(int) []int) []int {
	// Reverse postorder from root.
	order := make([]int, 0, n)
	state := make([]uint8, n)
	var dfs func(int)
	dfs = func(u int) {
		state[u] = 1
		for _, v := range succs(u) {
			if state[v] == 0 {
				dfs(v)
			}
		}
		order = append(order, u)
	}
	dfs(root)
	// order is postorder; reverse it.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range order {
		rpoNum[u] = i
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root] = root
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	changed := true
	for changed {
		changed = false
		for _, u := range order {
			if u == root {
				continue
			}
			newIdom := -1
			for _, p := range preds(u) {
				if rpoNum[p] < 0 || idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b given an idom array.
func Dominates(idom []int, a, b int) bool {
	if a == b {
		return true
	}
	for b != idom[b] {
		if idom[b] < 0 {
			return false
		}
		b = idom[b]
		if b == a {
			return true
		}
	}
	return a == b
}

// Loop is a natural loop: Head is the loop header, Body the set of nodes
// in the loop (including Head), and BackEdges the tail nodes of the back
// edges into Head.
type Loop struct {
	Head      int
	Body      map[int]bool
	BackEdges []int
}

// Contains reports whether node i belongs to the loop.
func (l *Loop) Contains(i int) bool { return l.Body[i] }

// SortedBody returns the loop body as a sorted slice.
func (l *Loop) SortedBody() []int {
	out := make([]int, 0, len(l.Body))
	for i := range l.Body {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// ExitEdges returns the (from, to) pairs leaving the loop.
func (l *Loop) ExitEdges(g *Graph) [][2]int {
	var out [][2]int
	for _, from := range l.SortedBody() {
		for _, to := range g.Succs(from) {
			if !l.Body[to] {
				out = append(out, [2]int{from, to})
			}
		}
	}
	return out
}

// NaturalLoops finds all natural loops via back edges (t→h where h
// dominates t). Loops sharing a header are merged, matching the classical
// definition.
func (g *Graph) NaturalLoops() []*Loop {
	return g.NaturalLoopsWith(g.Dominators())
}

// NaturalLoopsWith is NaturalLoops reusing a precomputed Dominators
// result, so callers that cache idom (e.g. a per-scan analysis context)
// do not recompute the dominator tree per query.
func (g *Graph) NaturalLoopsWith(idom []int) []*Loop {
	byHead := make(map[int]*Loop)
	n := g.NumNodes()
	for t := 0; t < n; t++ {
		for _, h := range g.succs[t] {
			if !Dominates(idom, h, t) {
				continue
			}
			l := byHead[h]
			if l == nil {
				l = &Loop{Head: h, Body: map[int]bool{h: true}}
				byHead[h] = l
			}
			l.BackEdges = append(l.BackEdges, t)
			// Collect the loop body: nodes that can reach t without
			// passing through h.
			stack := []int{t}
			for len(stack) > 0 {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Body[u] {
					continue
				}
				l.Body[u] = true
				for _, p := range g.preds[u] {
					if !l.Body[p] {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	heads := make([]int, 0, len(byHead))
	for h := range byHead {
		heads = append(heads, h)
	}
	sort.Ints(heads)
	out := make([]*Loop, 0, len(heads))
	for _, h := range heads {
		out = append(out, byHead[h])
	}
	return out
}

// ControlDeps computes control dependence using post-dominators: node u is
// control dependent on branch node b if b has a successor s such that u
// post-dominates s but u does not post-dominate b. Returns deps[u] = set
// of b.
func (g *Graph) ControlDeps() map[int]map[int]bool {
	ipdom := g.PostDominators()
	deps := make(map[int]map[int]bool)
	n := g.NumNodes()
	for b := 0; b < n; b++ {
		if len(g.succs[b]) < 2 {
			continue
		}
		for _, s := range g.succs[b] {
			// Walk the post-dominator tree from s up to (excluding)
			// ipdom[b]; every node on the walk is control dependent on b.
			stop := ipdom[b]
			u := s
			for u >= 0 && u != stop {
				if u != b {
					if deps[u] == nil {
						deps[u] = make(map[int]bool)
					}
					deps[u][b] = true
				}
				if u == ipdom[u] {
					break
				}
				u = ipdom[u]
			}
		}
	}
	return deps
}
