package lint

import (
	"testing"

	"repro/internal/apimodel"
	"repro/internal/corpus"
)

func rules(fs []Finding) map[Rule]bool {
	out := make(map[Rule]bool)
	for _, f := range fs {
		out[f.Rule] = true
	}
	return out
}

func TestLintFlagsBareApp(t *testing.T) {
	app := corpus.MustBuild(corpus.AppSpec{Package: "l.bare", Sites: []corpus.SiteSpec{
		{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity, UseResponse: true},
	}})
	got := rules(Run(app))
	for _, want := range []Rule{RuleNoConnCheck, RuleNoTimeout, RuleNoRetryConfig, RuleNoErrorUI, RuleUncheckedResp} {
		if !got[want] {
			t.Errorf("missing rule %s: %v", want, got)
		}
	}
}

func TestLintQuietOnDisciplinedApp(t *testing.T) {
	app := corpus.MustBuild(corpus.AppSpec{Package: "l.good", Sites: []corpus.SiteSpec{
		{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity, ConnCheck: true, SetTimeout: true,
			SetRetry: true, RetryCount: 1, Notify: true, UseResponse: true, CheckResponse: true},
	}})
	// The null check is not a "response-checking API" call, so the
	// shallow respcheck rule still fires — one of lint's inherent FPs.
	got := rules(Run(app))
	for _, silent := range []Rule{RuleNoConnCheck, RuleNoTimeout, RuleNoRetryConfig, RuleNoErrorUI} {
		if got[silent] {
			t.Errorf("rule %s fired on a disciplined app", silent)
		}
	}
}

func TestLintIgnoresAppsWithoutRequests(t *testing.T) {
	app := corpus.MustBuild(corpus.AppSpec{Package: "l.empty"})
	if fs := Run(app); len(fs) != 0 {
		t.Errorf("no-request app linted: %v", fs)
	}
}

// Lint's fundamental weakness: one config call anywhere silences the rule
// for the whole app, even when most requests are unprotected — the exact
// imprecision NChecker's per-request analysis fixes.
func TestLintBlindToPartialMisses(t *testing.T) {
	app := corpus.MustBuild(corpus.AppSpec{Package: "l.partial", Sites: []corpus.SiteSpec{
		{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity, ConnCheck: true, SetTimeout: true,
			SetRetry: true, RetryCount: 1, Notify: true},
		{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity}, // completely bare
		{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity}, // completely bare
	}})
	got := rules(Run(app))
	if got[RuleNoConnCheck] || got[RuleNoTimeout] {
		t.Errorf("lint should be fooled by the single good site: %v", got)
	}
}
