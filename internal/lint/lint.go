// Package lint is the baseline comparator: the kind of shallow,
// app-level network lint that mainstream Android lint tools could ship —
// "does this app ever call a timeout API anywhere?" — with none of
// NChecker's per-request reachability, context, or taint reasoning. It
// exists to quantify why the shallow approach is not enough (the paper's
// implicit comparison: network-defect checkers are absent from lint tools
// precisely because app-level heuristics are too coarse).
//
// The lint rules mirror NChecker's causes at whole-app granularity:
//
//	net-no-conn-check   the app never calls a connectivity-check API
//	net-no-timeout      the app never calls any timeout config API
//	net-no-retry-config the app uses a retry-capable library but never a retry API
//	net-no-error-ui     the app performs requests but never shows a UI alert
//	net-unchecked-resp  the app reads response bodies but never calls a
//	                    response-checking API
//
// A rule fires at most once per app and cannot point at a request, which
// is exactly what makes its warnings unactionable next to NChecker's.
package lint

import (
	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/jimple"
)

// Rule identifies a lint rule.
type Rule string

const (
	RuleNoConnCheck   Rule = "net-no-conn-check"
	RuleNoTimeout     Rule = "net-no-timeout"
	RuleNoRetryConfig Rule = "net-no-retry-config"
	RuleNoErrorUI     Rule = "net-no-error-ui"
	RuleUncheckedResp Rule = "net-unchecked-resp"
)

// Finding is one app-level lint warning.
type Finding struct {
	Rule    Rule
	Message string
}

// appFacts summarizes what APIs the app touches anywhere.
type appFacts struct {
	requests     bool
	connCheck    bool
	timeoutCfg   bool
	retryCfg     bool
	retryLib     bool
	uiAlert      bool
	respUse      bool
	respCheck    bool
	respCheckLib bool
}

// Run lints an app and returns its findings.
func Run(app *apk.App) []Finding {
	reg := apimodel.NewRegistry()
	var f appFacts
	for _, k := range reg.LibsUsedBy(app.Program) {
		l := reg.Library(k)
		if l.HasRetryAPIs {
			f.retryLib = true
		}
		if l.HasRespCheckAPIs() {
			f.respCheckLib = true
		}
	}
	for _, c := range app.Program.Classes() {
		for _, m := range c.Methods {
			for _, s := range m.Body {
				inv, ok := jimple.InvokeOf(s)
				if !ok {
					continue
				}
				sig := inv.Callee
				if _, _, isTarget := reg.TargetOf(sig); isTarget {
					f.requests = true
				}
				if android.IsConnectivityCheck(sig) {
					f.connCheck = true
				}
				if android.IsUIAlertCall(sig) {
					f.uiAlert = true
				}
				if _, cfg, isCfg := reg.ConfigOf(sig); isCfg {
					switch cfg.Kind {
					case apimodel.ConfigTimeout:
						f.timeoutCfg = true
					case apimodel.ConfigRetry:
						f.retryCfg = true
					}
				}
				if reg.IsRespCheck(sig) {
					f.respCheck = true
				}
				if apimodel.ResponseUseSigs[sig.Key()] {
					f.respUse = true
				}
			}
		}
	}
	if !f.requests {
		return nil
	}
	var out []Finding
	add := func(r Rule, msg string) { out = append(out, Finding{Rule: r, Message: msg}) }
	if !f.connCheck {
		add(RuleNoConnCheck, "app performs network requests but never checks connectivity")
	}
	if !f.timeoutCfg {
		add(RuleNoTimeout, "app performs network requests but never sets a timeout")
	}
	if f.retryLib && !f.retryCfg {
		add(RuleNoRetryConfig, "app uses a retry-capable library but never configures retries")
	}
	if !f.uiAlert {
		add(RuleNoErrorUI, "app performs network requests but never shows a UI message")
	}
	if f.respCheckLib && f.respUse && !f.respCheck {
		add(RuleUncheckedResp, "app reads response bodies but never validates a response")
	}
	return out
}
