// Package userstudy models the paper's controlled user study (§5.4): 20
// volunteers with ~6 months of Android experience fixing seven real NPDs
// from NChecker's reports, averaging 1.7 ± 0.14 minutes per fix. Human
// subjects are unavailable to a reproduction, so this package pairs two
// substitutes:
//
//   - internal/fixer proves each report is mechanically actionable (the
//     qualitative claim), and
//   - this package's calibrated developer model regenerates Figure 10's
//     quantitative shape: per-NPD fix-time distributions whose means,
//     confidence intervals, and the one hard case (the retried-exception
//     API only 1 of 20 volunteers could fix) match the paper.
package userstudy

import (
	"math"
	"math/rand"
	"sort"
)

// NumDevelopers is the paper's volunteer count.
const NumDevelopers = 20

// Task is one user-study NPD with its fix-effort parameters: BaseMinutes
// is the median fix time for an average volunteer; APINovelty adds time
// when the fix requires learning an unfamiliar API; HardRate is the
// fraction of volunteers who cannot produce a correct fix at all.
type Task struct {
	App         string
	NPD         string
	BaseMinutes float64
	APINovelty  float64
	HardRate    float64
}

// Tasks returns the seven Table 10 NPDs with calibrated effort parameters.
// "gpslogger3" (the retried-exception class) is the paper's hard case:
// only one volunteer in twenty fixed it, so it is excluded from the
// Figure 10 averages, exactly as the paper excludes it.
func Tasks() []Task {
	return []Task{
		{App: "ankidroid", NPD: "no connectivity check", BaseMinutes: 2.0, APINovelty: 0.2},
		{App: "gpslogger1", NPD: "no timeout", BaseMinutes: 1.1, APINovelty: 0.1},
		{App: "gpslogger2", NPD: "no retry times", BaseMinutes: 1.2, APINovelty: 0.1},
		{App: "gpslogger3", NPD: "no retried exception", BaseMinutes: 3.2, APINovelty: 1.5, HardRate: 0.95},
		{App: "devfest1", NPD: "no error message", BaseMinutes: 1.7, APINovelty: 0.2},
		{App: "devfest2", NPD: "invalid response", BaseMinutes: 1.9, APINovelty: 0.2},
		{App: "maoshishu", NPD: "over retry", BaseMinutes: 1.5, APINovelty: 0.1},
	}
}

// Developer is a simulated volunteer: Skill is a time multiplier (lower
// is faster), lognormally distributed around 1.
type Developer struct {
	ID    int
	Skill float64
}

// SampleDevelopers draws the volunteer cohort.
func SampleDevelopers(rng *rand.Rand) []Developer {
	devs := make([]Developer, NumDevelopers)
	for i := range devs {
		devs[i] = Developer{ID: i, Skill: math.Exp(rng.NormFloat64() * 0.25)}
	}
	// Sort by skill so "the most experienced volunteer" is well defined
	// (the one who fixes the hard case).
	sort.Slice(devs, func(i, j int) bool { return devs[i].Skill < devs[j].Skill })
	for i := range devs {
		devs[i].ID = i
	}
	return devs
}

// Trial is one volunteer fixing one NPD.
type Trial struct {
	App     string
	DevID   int
	Minutes float64
	Correct bool
}

// Result is a full study run.
type Result struct {
	Trials []Trial
}

// Simulate runs the study deterministically from a seed.
func Simulate(seed int64) Result {
	rng := rand.New(rand.NewSource(seed))
	devs := SampleDevelopers(rng)
	var out Result
	for _, task := range Tasks() {
		for di, dev := range devs {
			noise := math.Exp(rng.NormFloat64() * 0.28)
			minutes := (task.BaseMinutes + task.APINovelty*rng.Float64()) * dev.Skill * noise
			correct := true
			if task.HardRate > 0 {
				// Only the most skilled volunteer masters the unfamiliar
				// exception-class API (paper: "only one volunteer
				// correctly sets the exception class").
				correct = di == 0
			}
			out.Trials = append(out.Trials, Trial{
				App: task.App, DevID: dev.ID, Minutes: minutes, Correct: correct,
			})
		}
	}
	return out
}

// MeanCI returns the mean fix time and the 95% confidence-interval
// half-width over the selected trials.
func MeanCI(trials []Trial) (mean, ci float64) {
	if len(trials) == 0 {
		return 0, 0
	}
	var sum float64
	for _, t := range trials {
		sum += t.Minutes
	}
	mean = sum / float64(len(trials))
	var varSum float64
	for _, t := range trials {
		d := t.Minutes - mean
		varSum += d * d
	}
	if len(trials) > 1 {
		sd := math.Sqrt(varSum / float64(len(trials)-1))
		ci = 1.96 * sd / math.Sqrt(float64(len(trials)))
	}
	return mean, ci
}

// ByApp returns the correct trials of one app.
func (r Result) ByApp(app string) []Trial {
	var out []Trial
	for _, t := range r.Trials {
		if t.App == app && t.Correct {
			out = append(out, t)
		}
	}
	return out
}

// Figure10Apps lists the apps included in the Figure 10 averages (the
// hard retried-exception case is excluded, as in the paper).
func Figure10Apps() []string {
	return []string{"ankidroid", "gpslogger1", "gpslogger2", "devfest1", "devfest2", "maoshishu"}
}

// OverallMeanCI aggregates the Figure 10 apps.
func (r Result) OverallMeanCI() (mean, ci float64) {
	var sel []Trial
	include := make(map[string]bool)
	for _, a := range Figure10Apps() {
		include[a] = true
	}
	for _, t := range r.Trials {
		if include[t.App] && t.Correct {
			sel = append(sel, t)
		}
	}
	return MeanCI(sel)
}

// HardCaseCorrect counts the volunteers who fixed the retried-exception
// NPD correctly.
func (r Result) HardCaseCorrect() int {
	n := 0
	for _, t := range r.Trials {
		if t.App == "gpslogger3" && t.Correct {
			n++
		}
	}
	return n
}
