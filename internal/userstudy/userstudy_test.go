package userstudy

import (
	"math/rand"
	"testing"
)

func TestSevenTasks(t *testing.T) {
	tasks := Tasks()
	if len(tasks) != 7 {
		t.Fatalf("tasks: %d, want 7 (Table 10)", len(tasks))
	}
	names := map[string]bool{}
	for _, task := range tasks {
		if task.App == "" || task.NPD == "" || task.BaseMinutes <= 0 {
			t.Errorf("incomplete task: %+v", task)
		}
		names[task.App] = true
	}
	for _, want := range []string{"ankidroid", "gpslogger1", "gpslogger2", "gpslogger3", "devfest1", "devfest2", "maoshishu"} {
		if !names[want] {
			t.Errorf("missing task %s", want)
		}
	}
}

func TestCohortSize(t *testing.T) {
	devs := SampleDevelopers(rand.New(rand.NewSource(1)))
	if len(devs) != NumDevelopers {
		t.Fatalf("developers: %d", len(devs))
	}
	for i := 1; i < len(devs); i++ {
		if devs[i].Skill < devs[i-1].Skill {
			t.Fatal("developers not sorted by skill")
		}
	}
}

func TestSimulateShapeMatchesPaper(t *testing.T) {
	res := Simulate(2016)
	if len(res.Trials) != 7*NumDevelopers {
		t.Fatalf("trials: %d", len(res.Trials))
	}
	mean, ci := res.OverallMeanCI()
	// Paper: 1.7 ± 0.14 minutes at 95% confidence.
	if mean < 1.4 || mean > 2.0 {
		t.Errorf("overall mean %.2f min, want ≈1.7", mean)
	}
	if ci <= 0 || ci > 0.30 {
		t.Errorf("95%% CI half-width %.3f, want ≈0.14", ci)
	}
	// Every included NPD fixed in minutes, not tens of minutes.
	for _, app := range Figure10Apps() {
		m, _ := MeanCI(res.ByApp(app))
		if m < 0.5 || m > 4.0 {
			t.Errorf("%s mean %.2f min out of plausible range", app, m)
		}
	}
	if got := res.HardCaseCorrect(); got != 1 {
		t.Errorf("hard case fixed by %d volunteers, paper says exactly 1", got)
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a := Simulate(5)
	b := Simulate(5)
	for i := range a.Trials {
		if a.Trials[i] != b.Trials[i] {
			t.Fatal("simulation not deterministic")
		}
	}
	c := Simulate(6)
	diff := false
	for i := range a.Trials {
		if a.Trials[i].Minutes != c.Trials[i].Minutes {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("different seeds give identical trials")
	}
}

func TestMeanCIEdgeCases(t *testing.T) {
	if m, ci := MeanCI(nil); m != 0 || ci != 0 {
		t.Error("empty trials should be zero")
	}
	if m, ci := MeanCI([]Trial{{Minutes: 2}}); m != 2 || ci != 0 {
		t.Errorf("single trial: %v %v", m, ci)
	}
}

func TestConnCheckSlowerThanTimeout(t *testing.T) {
	// Figure 10's ordering: the connectivity-check fix (two APIs + a
	// guard) takes longer than the one-line timeout fix.
	res := Simulate(2016)
	conn, _ := MeanCI(res.ByApp("ankidroid"))
	timeout, _ := MeanCI(res.ByApp("gpslogger1"))
	if conn <= timeout {
		t.Errorf("expected conn-check fix (%.2f) slower than timeout fix (%.2f)", conn, timeout)
	}
}
