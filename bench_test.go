// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per table/figure), the DESIGN.md ablations,
// and the core pipeline's micro-costs. Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/android"
	"repro/internal/apimodel"
	"repro/internal/apk"
	"repro/internal/callgraph"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataflow"
	"repro/internal/dex"
	"repro/internal/experiments"
	"repro/internal/fixer"
	"repro/internal/hierarchy"
	"repro/internal/interp"
	"repro/internal/jimple"
	"repro/internal/lint"
	"repro/internal/netsim"
	"repro/internal/userstudy"
)

// --- one benchmark per table/figure -----------------------------------------

func BenchmarkFigure3_DownloadSuccess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(50, 1)
		if len(r.Series) != 2 {
			b.Fatal("bad series")
		}
	}
}

func BenchmarkTable1_StudyApps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table1().Apps) != 21 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable2_Representatives(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table2().Rows) != 6 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure4_ImpactDistribution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Figure4().Total != 90 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkTable3_RootCauses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table3().Total != 90 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable4_LibraryMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table4().Libraries) != 6 {
			b.Fatal("bad matrix")
		}
	}
}

func BenchmarkTable5_MisusePatterns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Table5().Rows) == 0 {
			b.Fatal("bad table")
		}
	}
}

// corpusScan caches the expensive full-corpus scan across benchmarks.
func corpusScan(b *testing.B) *experiments.CorpusScan {
	b.Helper()
	cs, err := experiments.DefaultScan()
	if err != nil {
		b.Fatal(err)
	}
	return cs
}

func BenchmarkTable6_CorpusScan(b *testing.B) {
	// The headline experiment: generate and scan all 285 apps.
	for i := 0; i < b.N; i++ {
		cs, err := experiments.ScanCorpus(experiments.Seed)
		if err != nil {
			b.Fatal(err)
		}
		r := experiments.Table6(cs)
		if r.TotalApps != 285 {
			b.Fatal("bad corpus")
		}
	}
}

func BenchmarkTable7_LibraryUsage(b *testing.B) {
	cs := corpusScan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Table7(cs).Native != 270 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable8_RetryBehaviours(b *testing.B) {
	cs := corpusScan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Table8(cs).EvalApps != 91 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFigure8_ConfigCDF(b *testing.B) {
	cs := corpusScan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8(cs)
		if len(r.ConnCheck.Ratios) == 0 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkFigure9_NotificationCDF(b *testing.B) {
	cs := corpusScan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9(cs)
		if len(r.Notif.Ratios) == 0 {
			b.Fatal("bad figure")
		}
	}
}

func BenchmarkTable9_GoldenAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table9()
		if err != nil || r.Correct != 130 {
			b.Fatalf("bad accuracy table: %v", err)
		}
	}
}

func BenchmarkTable10_AutoFix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table10()
		if err != nil || len(r.Rows) != 7 {
			b.Fatalf("bad table: %v", err)
		}
	}
}

func BenchmarkFigure10_UserStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure10(experiments.Seed)
		if len(r.Rows) != 6 {
			b.Fatal("bad figure")
		}
	}
}

// --- ablations (DESIGN.md §5) ------------------------------------------------

func goldenApps(b *testing.B) []*apk.App {
	b.Helper()
	apps, err := corpus.BuildGoldens()
	if err != nil {
		b.Fatal(err)
	}
	return apps
}

func scanAllWith(b *testing.B, apps []*apk.App, opts core.Options) int {
	nc := core.NewWithOptions(opts)
	warnings := 0
	for _, app := range apps {
		warnings += len(nc.ScanApp(app).Reports)
	}
	return warnings
}

func BenchmarkAblation_CHADispatch(b *testing.B) {
	apps := goldenApps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAllWith(b, apps, core.Options{})
	}
}

func BenchmarkAblation_DeclaredDispatchOnly(b *testing.B) {
	apps := goldenApps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAllWith(b, apps, core.Options{DeclaredDispatchOnly: true})
	}
}

func BenchmarkAblation_TaintConfigDiscovery(b *testing.B) {
	apps := goldenApps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAllWith(b, apps, core.Options{})
	}
}

func BenchmarkAblation_WholeMethodConfigScan(b *testing.B) {
	apps := goldenApps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scanAllWith(b, apps, core.Options{DisableTaintConfigDiscovery: true})
	}
}

func BenchmarkAblation_RetrySlicing(b *testing.B) {
	app := corpus.MustBuild(corpus.AppSpec{Package: "ab.loop", Sites: []corpus.SiteSpec{
		{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity, RetryLoop: true, Notify: true,
			ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1},
	}})
	nc := core.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if nc.ScanApp(app).Stats.RetryLoops != 1 {
			b.Fatal("loop not found")
		}
	}
}

func BenchmarkAblation_NoRetrySlicing(b *testing.B) {
	app := corpus.MustBuild(corpus.AppSpec{Package: "ab.loop2", Sites: []corpus.SiteSpec{
		{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity, RetryLoop: true, Notify: true,
			ConnCheck: true, SetTimeout: true, SetRetry: true, RetryCount: 1},
	}})
	nc := core.NewWithOptions(core.Options{DisableRetrySlicing: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nc.ScanApp(app)
	}
}

// --- scan-pipeline parallelism ------------------------------------------------

// benchCorpus caches the generated corpus so the ScanApp benchmarks time
// only the scanning, not corpus generation.
func benchCorpus(b *testing.B) []*corpus.CorpusApp {
	b.Helper()
	apps, err := corpus.GenerateCorpus(experiments.Seed)
	if err != nil {
		b.Fatal(err)
	}
	return apps
}

// BenchmarkScanApp is the sequential baseline for the acceptance
// criterion: the Table 6 corpus scanned with a single worker.
func BenchmarkScanApp(b *testing.B) {
	apps := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := experiments.ScanApps(apps, core.Options{Workers: 1})
		if cs.TotalWarnings() == 0 {
			b.Fatal("no warnings")
		}
	}
}

// BenchmarkScanAppParallel is the same corpus scan with the worker pool
// sized to the machine; compare ns/op against BenchmarkScanApp.
func BenchmarkScanAppParallel(b *testing.B) {
	apps := benchCorpus(b)
	workers := runtime.NumCPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := experiments.ScanApps(apps, core.Options{Workers: workers})
		if cs.TotalWarnings() == 0 {
			b.Fatal("no warnings")
		}
	}
}

// BenchmarkScanAppIntra is BenchmarkScanApp under the interprocedural
// ablation: no taint summaries, no feasibility pruning. The delta against
// BenchmarkScanApp is the whole-pipeline cost of the summary engine.
func BenchmarkScanAppIntra(b *testing.B) {
	apps := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := experiments.ScanApps(apps, core.Options{Workers: 1, Intraprocedural: true})
		if cs.TotalWarnings() == 0 {
			b.Fatal("no warnings")
		}
	}
}

// summaryBenchInput assembles the call graph and app methods of the
// micro-benchmark app for the engine-only benchmarks.
func summaryBenchInput(b *testing.B) (*callgraph.Graph, []*jimple.Method) {
	b.Helper()
	app := benchApp(b)
	h := hierarchy.New(app.Program)
	cg := callgraph.Build(h, app.Manifest)
	var methods []*jimple.Method
	for _, c := range app.Program.Classes() {
		for _, m := range c.Methods {
			if m.HasBody() {
				methods = append(methods, m)
			}
		}
	}
	return cg, methods
}

// BenchmarkSummariesCold times the summary engine with nothing cached:
// every iteration rebuilds CFGs, reaching definitions, and constant
// propagation before the bottom-up fixpoint.
func BenchmarkSummariesCold(b *testing.B) {
	cg, methods := summaryBenchInput(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := dataflow.ComputeSummaries(cg, methods, dataflow.SummaryConfig{})
		if err != nil || set.Stats().Methods == 0 {
			b.Fatal("no summaries")
		}
	}
}

// BenchmarkSummariesWarm times the summary fixpoint alone: the per-method
// CFG/reach-defs/const-prop artifacts come from a pre-warmed cache, the
// way AnalysisContext serves them on the second and later consults.
func BenchmarkSummariesWarm(b *testing.B) {
	cg, methods := summaryBenchInput(b)
	cfgs := make(map[*jimple.Method]*cfg.Graph, len(methods))
	rds := make(map[*jimple.Method]*dataflow.ReachDefs, len(methods))
	cps := make(map[*jimple.Method]*dataflow.ConstProp, len(methods))
	for _, m := range methods {
		g := cfg.New(m)
		cfgs[m] = g
		rds[m] = dataflow.NewReachDefs(g)
		cps[m] = dataflow.NewConstProp(rds[m])
	}
	conf := dataflow.SummaryConfig{
		CFG:       func(m *jimple.Method) *cfg.Graph { return cfgs[m] },
		ReachDefs: func(m *jimple.Method) *dataflow.ReachDefs { return rds[m] },
		ConstProp: func(m *jimple.Method) *dataflow.ConstProp { return cps[m] },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set, err := dataflow.ComputeSummaries(cg, methods, conf)
		if err != nil || set.Stats().Methods == 0 {
			b.Fatal("no summaries")
		}
	}
}

// --- persistent scan cache (DESIGN.md §7) -------------------------------------

// cacheBench collects the cold/warm full-corpus timings; whichever
// benchmark finishes second writes BENCH_cache.json, so one
//
//	go test -bench='ScanCorpusCold|ScanCorpusWarm' .
//
// run commits both numbers and the speedup.
var cacheBench struct {
	sync.Mutex
	coldNs, warmNs int64
}

func recordCacheBench(b *testing.B, cold bool, nsPerOp int64) {
	b.Helper()
	cacheBench.Lock()
	defer cacheBench.Unlock()
	if cold {
		cacheBench.coldNs = nsPerOp
	} else {
		cacheBench.warmNs = nsPerOp
	}
	if cacheBench.coldNs == 0 || cacheBench.warmNs == 0 {
		return
	}
	out := struct {
		Benchmark   string  `json:"benchmark"`
		Apps        int     `json:"apps"`
		ColdNsPerOp int64   `json:"cold_ns_per_op"`
		WarmNsPerOp int64   `json:"warm_ns_per_op"`
		Speedup     float64 `json:"speedup"`
		GoVersion   string  `json:"go_version"`
		GOOS        string  `json:"goos"`
		GOARCH      string  `json:"goarch"`
		CPUs        int     `json:"cpus"`
	}{
		Benchmark:   "BenchmarkScanCorpusCold/BenchmarkScanCorpusWarm",
		Apps:        corpus.CorpusSize,
		ColdNsPerOp: cacheBench.coldNs,
		WarmNsPerOp: cacheBench.warmNs,
		Speedup:     float64(cacheBench.coldNs) / float64(cacheBench.warmNs),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_cache.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScanCorpusCold scans the pre-generated 285-app corpus into a
// fresh cache directory every iteration: the cost of a first-ever run
// with -cache on (all misses, plus entry encoding and commits). Each
// iteration needs its own directory because cachestore.Shared memoizes
// stores per path — reusing one would silently measure the warm path.
// Under -short only the first coldSmokeApps apps are scanned (the
// check.sh smoke gate's corpus); full runs also feed BENCH_cache.json.
func BenchmarkScanCorpusCold(b *testing.B) {
	apps := benchCorpus(b)
	if testing.Short() {
		apps = apps[:coldSmokeApps]
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir := b.TempDir()
		b.StartTimer()
		cs := experiments.ScanApps(apps, core.Options{CacheDir: dir, CacheMode: core.CacheRW})
		if cs.TotalWarnings() == 0 {
			b.Fatal("no warnings")
		}
		if n := cs.IncompleteApps(); n > 0 {
			b.Fatalf("%d apps degraded", n)
		}
	}
	nsPerOp := b.Elapsed().Nanoseconds() / int64(b.N)
	runtime.ReadMemStats(&after)
	if !testing.Short() {
		recordCacheBench(b, true, nsPerOp)
	}
	recordColdBench(b, coldBenchEntry{
		Apps:        len(apps),
		NsPerOp:     nsPerOp,
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(b.N),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(b.N),
	})
}

// --- cold-scan allocation trajectory (ROADMAP item 5) -------------------------

// coldSmokeApps is the corpus prefix the -short smoke run scans: enough
// apps to exercise every checker family, small enough for a CI gate.
const coldSmokeApps = 40

type coldBenchEntry struct {
	Label       string `json:"label"`
	Apps        int    `json:"apps"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// coldBenchFile is BENCH_cold.json, the cold-scan perf trajectory.
// Trajectory holds one full-corpus entry per landed change (labeled via
// BENCH_COLD_LABEL; committed PR entries keep their labels and stay put,
// so the file reads as a history). Smoke holds the -short short-corpus
// numbers scripts/check.sh regenerates and gates on.
type coldBenchFile struct {
	Benchmark  string           `json:"benchmark"`
	GoVersion  string           `json:"go_version"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	CPUs       int              `json:"cpus"`
	Trajectory []coldBenchEntry `json:"trajectory"`
	Smoke      *coldBenchEntry  `json:"smoke,omitempty"`
}

// recordColdBench folds one BenchmarkScanCorpusCold result into
// BENCH_cold.json. The allocation counts come from runtime.MemStats
// around the whole benchmark loop, so they include the (tiny) untimed
// per-iteration temp-dir setup — self-consistent between regeneration
// and the check.sh comparison, which is what the gate needs.
// BENCH_COLD_OUT redirects the write (check.sh points it at an artifacts
// dir so a smoke run never dirties the committed file).
func recordColdBench(b *testing.B, e coldBenchEntry) {
	b.Helper()
	var f coldBenchFile
	if data, err := os.ReadFile("BENCH_cold.json"); err == nil {
		if err := json.Unmarshal(data, &f); err != nil {
			b.Fatalf("BENCH_cold.json: %v", err)
		}
	}
	f.Benchmark = "BenchmarkScanCorpusCold"
	f.GoVersion = runtime.Version()
	f.GOOS = runtime.GOOS
	f.GOARCH = runtime.GOARCH
	f.CPUs = runtime.NumCPU()
	if testing.Short() {
		e.Label = "smoke"
		f.Smoke = &e
	} else {
		e.Label = os.Getenv("BENCH_COLD_LABEL")
		if e.Label == "" {
			e.Label = "working tree"
		}
		replaced := false
		for i := range f.Trajectory {
			if f.Trajectory[i].Label == e.Label {
				f.Trajectory[i] = e
				replaced = true
			}
		}
		if !replaced {
			f.Trajectory = append(f.Trajectory, e)
		}
	}
	out := os.Getenv("BENCH_COLD_OUT")
	if out == "" {
		out = "BENCH_cold.json"
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkScanCorpusWarm rescans the same corpus against a cache filled
// once before the timer: every app is answered by a result-entry hit.
// Compare ns/op against BenchmarkScanCorpusCold; BENCH_cache.json records
// the ratio.
func BenchmarkScanCorpusWarm(b *testing.B) {
	apps := benchCorpus(b)
	dir := b.TempDir()
	opts := core.Options{CacheDir: dir, CacheMode: core.CacheRW}
	fill := experiments.ScanApps(apps, opts)
	if n := fill.IncompleteApps(); n > 0 {
		b.Fatalf("cache fill degraded %d apps", n)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs := experiments.ScanApps(apps, opts)
		if cs.TotalWarnings() == 0 {
			b.Fatal("no warnings")
		}
	}
	recordCacheBench(b, false, b.Elapsed().Nanoseconds()/int64(b.N))
}

// --- targeted engine mode (DESIGN.md §9) --------------------------------------

// targetedBench collects the full/targeted cold-scan timings across the
// class-count scales; whichever benchmark finishes last writes
// BENCH_targeted.json, so one
//
//	go test -bench='^BenchmarkScanMode' .
//
// run commits every scale's pair and per-scale speedup. The scales pad
// the micro-benchmark app with inert classes (corpus.AddPadding) to 10×
// and 100× its class count: the full engine decodes and scans all of
// them, the targeted engine skips them, so the ratio grows with app size
// — the sub-linear-scaling acceptance criterion.
var targetedBench struct {
	sync.Mutex
	fullNs, targetedNs map[int]int64
	classes            map[int]int
}

func recordTargetedBench(b *testing.B, mode core.EngineMode, scale, classes int, nsPerOp int64) {
	b.Helper()
	targetedBench.Lock()
	defer targetedBench.Unlock()
	if targetedBench.fullNs == nil {
		targetedBench.fullNs = make(map[int]int64)
		targetedBench.targetedNs = make(map[int]int64)
		targetedBench.classes = make(map[int]int)
	}
	targetedBench.classes[scale] = classes
	if mode == core.ModeTargeted {
		targetedBench.targetedNs[scale] = nsPerOp
	} else {
		targetedBench.fullNs[scale] = nsPerOp
	}
	scales := []int{1, 10, 100}
	for _, s := range scales {
		if targetedBench.fullNs[s] == 0 || targetedBench.targetedNs[s] == 0 {
			return
		}
	}
	type row struct {
		Scale           int     `json:"scale"`
		Classes         int     `json:"classes"`
		FullNsPerOp     int64   `json:"full_ns_per_op"`
		TargetedNsPerOp int64   `json:"targeted_ns_per_op"`
		TargetedSpeedup float64 `json:"speedup"`
	}
	out := struct {
		Benchmark string `json:"benchmark"`
		Rows      []row  `json:"rows"`
		GoVersion string `json:"go_version"`
		GOOS      string `json:"goos"`
		GOARCH    string `json:"goarch"`
		CPUs      int    `json:"cpus"`
	}{
		Benchmark: "BenchmarkScanModeFull*/BenchmarkScanModeTargeted*",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
	}
	for _, s := range scales {
		f, t := targetedBench.fullNs[s], targetedBench.targetedNs[s]
		out.Rows = append(out.Rows, row{
			Scale: s, Classes: targetedBench.classes[s], FullNsPerOp: f, TargetedNsPerOp: t,
			TargetedSpeedup: float64(f) / float64(t),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_targeted.json", append(data, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// benchScanMode times a cold ScanBytes of the micro-benchmark app padded
// to scale× its class count, through the given engine mode.
func benchScanMode(b *testing.B, mode core.EngineMode, scale int) {
	app := benchApp(b)
	if scale > 1 {
		corpus.AddPadding(app, app.Program.NumClasses()*(scale-1))
	}
	classes := app.Program.NumClasses()
	data, err := apk.Encode(app)
	if err != nil {
		b.Fatal(err)
	}
	nc := core.NewWithOptions(core.Options{Mode: mode, Workers: 1})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := nc.ScanBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Reports) == 0 {
			b.Fatal("no warnings")
		}
	}
	recordTargetedBench(b, mode, scale, classes, b.Elapsed().Nanoseconds()/int64(b.N))
}

func BenchmarkScanModeFull1x(b *testing.B)      { benchScanMode(b, core.ModeFull, 1) }
func BenchmarkScanModeTargeted1x(b *testing.B)  { benchScanMode(b, core.ModeTargeted, 1) }
func BenchmarkScanModeFull10x(b *testing.B)     { benchScanMode(b, core.ModeFull, 10) }
func BenchmarkScanModeTargeted10x(b *testing.B) { benchScanMode(b, core.ModeTargeted, 10) }
func BenchmarkScanModeFull100x(b *testing.B)    { benchScanMode(b, core.ModeFull, 100) }
func BenchmarkScanModeTargeted100x(b *testing.B) {
	benchScanMode(b, core.ModeTargeted, 100)
}

// --- pipeline micro-benchmarks ------------------------------------------------

func benchApp(b *testing.B) *apk.App {
	b.Helper()
	return corpus.MustBuild(corpus.AppSpec{Package: "bench.app", Sites: []corpus.SiteSpec{
		{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity, UseResponse: true, Notify: true},
		{Lib: apimodel.LibVolley, Ctx: corpus.CtxActivity, Notify: true},
		{Lib: apimodel.LibAsyncHTTP, Ctx: corpus.CtxService},
		{Lib: apimodel.LibHttpURL, Ctx: corpus.CtxActivity, Wrap: corpus.WrapAsyncTask},
	}})
}

func BenchmarkScanSingleApp(b *testing.B) {
	app := benchApp(b)
	nc := core.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(nc.ScanApp(app).Reports) == 0 {
			b.Fatal("no warnings")
		}
	}
}

func BenchmarkDexEncode(b *testing.B) {
	app := benchApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := dex.Encode(app.Program)
		b.SetBytes(int64(len(data)))
	}
}

func BenchmarkDexDecode(b *testing.B) {
	app := benchApp(b)
	data := dex.Encode(app.Program)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dex.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAPKRoundTrip(b *testing.B) {
	app := benchApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := apk.Encode(app)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := apk.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallGraphBuild(b *testing.B) {
	app := benchApp(b)
	prog := jimple.NewProgram()
	prog.Merge(app.Program)
	prog.Merge(android.Framework())
	prog.Merge(apimodel.Stubs())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := hierarchy.New(prog)
		g := callgraph.Build(h, app.Manifest)
		if g.NumMethods() == 0 {
			b.Fatal("empty graph")
		}
	}
}

func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		apps, err := corpus.GenerateCorpus(int64(i))
		if err != nil || len(apps) != corpus.CorpusSize {
			b.Fatalf("bad corpus: %v", err)
		}
	}
}

func BenchmarkNetsimDownload(b *testing.B) {
	c := netsim.DefaultVolley()
	p := netsim.ThreeGLossy(0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SuccessRate(p, 128*1024, 10, int64(i))
	}
}

func BenchmarkFixerFixAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app := corpus.MustBuild(corpus.AppSpec{Package: "bench.fix", Sites: []corpus.SiteSpec{
			{Lib: apimodel.LibBasic, Ctx: corpus.CtxActivity, UseResponse: true},
		}})
		f := fixer.New()
		out, err := f.FixAll(app, 50)
		if err != nil || out.Remaining != 0 {
			b.Fatalf("fix failed: %v (%d remaining)", err, out.Remaining)
		}
	}
}

func BenchmarkUserStudySimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := userstudy.Simulate(int64(i))
		if len(res.Trials) == 0 {
			b.Fatal("no trials")
		}
	}
}

func BenchmarkTable9WithICC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table9WithICC()
		if err != nil || r.FP != 0 {
			b.Fatalf("bad ICC accuracy table: %v (FP=%d)", err, r.FP)
		}
	}
}

func BenchmarkTable11_GuidelineComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table11(int64(i))
		if r.Requests == 0 {
			b.Fatal("empty workload")
		}
	}
}

func BenchmarkDynamicComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.DynamicComparison(int64(i))
		if err != nil || r.CrashTotal == 0 {
			b.Fatalf("bad dynamic comparison: %v", err)
		}
	}
}

func BenchmarkInterpreterRun(b *testing.B) {
	app := benchApp(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := interp.RunApp(app, interp.NetPoor, int64(i))
		if len(rep.Runs) == 0 {
			b.Fatal("no runs")
		}
	}
}

func BenchmarkLintBaseline(b *testing.B) {
	apps := goldenApps(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, app := range apps {
			total += len(lint.Run(app))
		}
		if total == 0 {
			b.Fatal("lint found nothing")
		}
	}
}
