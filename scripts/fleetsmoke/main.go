// Command fleetsmoke is the CI smoke client for the scan fleet
// (scripts/check.sh drives it; no curl required in the container). It
// waits for the coordinator's -ready-file, checks that the expected
// number of workers registered, then scans every app container given on
// the command line through the fleet and writes the single-process CLI's
// exact stdout format — the `== path: N requests, M warnings ==` banner
// followed by the rendered reports, in argument order — to -out, so the
// gate can `cmp` it byte-for-byte against a direct `nchecker *.apk` run.
// Exit 0 on success, 1 with a message on any failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/testutil"
)

func main() {
	readyFile := flag.String("ready-file", "", "file the coordinator writes its bound address to")
	out := flag.String("out", "", "write the fleet scan output here (default stdout)")
	workers := flag.Int("workers", 2, "number of registered workers to wait for")
	timeout := flag.Duration("timeout", 120*time.Second, "overall deadline")
	flag.Parse()
	if *readyFile == "" || flag.NArg() == 0 {
		fail("usage: fleetsmoke -ready-file PATH [-out FILE] app.apk...")
	}
	deadline := time.Now().Add(*timeout)

	addr, err := testutil.WaitAddrFile(*readyFile, deadline)
	if err != nil {
		fail("%v", err)
	}
	client := &testutil.ScanClient{Base: "http://" + addr}
	fmt.Printf("fleetsmoke: coordinator at %s\n", client.Base)

	awaitWorkers(client.Base, *workers, deadline)

	// Submit everything first so the fleet has real queue depth — one job
	// at a time would let work stealing serve the whole run from a single
	// worker regardless of shard placement — then await in argument order
	// to keep the output byte-comparable to the CLI.
	ids := make([]string, flag.NArg())
	for i, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail("%v", err)
		}
		job, err := client.Submit("?name="+path, data)
		if err != nil {
			fail("submitting %s: %v", path, err)
		}
		ids[i] = job.ID
	}
	var b strings.Builder
	byWorker := map[string]int{}
	for i, path := range flag.Args() {
		job, err := client.Await(ids[i], deadline)
		switch {
		case err != nil:
			fail("%v", err)
		case job.Status != "done":
			fail("job %s (%s) finished %q (%s), want done", job.ID, path, job.Status, job.Error)
		case job.Degraded:
			fail("job %s (%s) degraded: %s", job.ID, path, job.Error)
		case job.Worker == "":
			fail("job %s (%s) carries no worker attribution", job.ID, path)
		}
		byWorker[job.Worker]++
		fmt.Fprintf(&b, "== %s: %d requests, %d warnings ==\n", path, job.Requests, job.Warnings)
		b.WriteString(job.ReportText)
	}
	if len(byWorker) < 2 && len(flag.Args()) >= 8 {
		fail("sharding sent all %d apps to one worker: %v", len(flag.Args()), byWorker)
	}
	fmt.Printf("fleetsmoke: %d apps scanned across %d workers\n", flag.NArg(), len(byWorker))

	// The fleet counters must be on the aggregated /metrics.
	metrics, err := client.Metrics()
	if err != nil {
		fail("%v", err)
	}
	for _, want := range []string{
		`nchecker_fleet_jobs_total{status="done"}`,
		"nchecker_fleet_workers_live 2",
		"nchecker_scan_seconds_count", // summed from the workers
	} {
		if !strings.Contains(metrics, want) {
			fail("/metrics missing %q:\n%s", want, metrics)
		}
	}

	if *out == "" {
		fmt.Print(b.String())
	} else if err := os.WriteFile(*out, []byte(b.String()), 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Println("fleetsmoke: ok")
}

// awaitWorkers polls GET /fleet until n live workers have registered.
func awaitWorkers(base string, n int, deadline time.Time) {
	for {
		live := 0
		resp, err := http.Get(base + "/fleet")
		if err == nil {
			var v struct {
				Workers []struct {
					Down bool `json:"down"`
				} `json:"workers"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&v); err == nil {
				for _, w := range v.Workers {
					if !w.Down {
						live++
					}
				}
			}
			resp.Body.Close()
		}
		if live >= n {
			return
		}
		if time.Now().After(deadline) {
			fail("only %d of %d workers registered before deadline", live, n)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fleetsmoke: "+format+"\n", args...)
	os.Exit(1)
}
