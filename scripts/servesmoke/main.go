// Command servesmoke is the CI smoke client for `nchecker serve`
// (scripts/check.sh drives it; no curl required in the container). It
// waits for the server's -ready-file, then exercises the service end to
// end: /healthz must answer 200, a POSTed fixture app must scan to a
// finished job with warnings and report text, and /metrics must expose
// the scan counters. Exit 0 on success, 1 with a message on any failure.
//
// The fixture app, ready-file handshake, and HTTP client live in
// internal/testutil, shared with the server and fleet test suites.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/testutil"
)

func main() {
	readyFile := flag.String("ready-file", "", "file the server writes its bound address to")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	flag.Parse()
	if *readyFile == "" {
		fail("usage: servesmoke -ready-file PATH")
	}
	deadline := time.Now().Add(*timeout)

	addr, err := testutil.WaitAddrFile(*readyFile, deadline)
	if err != nil {
		fail("%v", err)
	}
	client := &testutil.ScanClient{Base: "http://" + addr}
	fmt.Printf("servesmoke: server at %s\n", client.Base)

	// Liveness first.
	if code, err := client.Healthz(); err != nil || code != http.StatusOK {
		fail("GET /healthz = %d (%v), want 200", code, err)
	}

	// Submit the fixture app (a buggy request with no connectivity check,
	// no timeout, no error handling — it must produce warnings).
	app, err := testutil.FixtureApp()
	if err != nil {
		fail("build fixture app: %v", err)
	}
	job := scanJob(client, "?name=smoke.apk", app, deadline)
	switch {
	case job.Warnings == 0:
		fail("job %s found no warnings in the buggy fixture", job.ID)
	case !strings.Contains(job.ReportText, "NPD Information"):
		fail("job %s report text missing the Figure 7 layout:\n%s", job.ID, job.ReportText)
	case strings.Contains(job.ReportText, "Dynamic validation"):
		fail("job %s report text carries a verdict without ?validate:\n%s", job.ID, job.ReportText)
	}
	fmt.Printf("servesmoke: job done, %d warnings\n", job.Warnings)

	// The scan must be visible on /metrics.
	metrics := getMetrics(client)
	for _, want := range []string{
		"nchecker_jobs_submitted_total 1",
		`nchecker_jobs_total{status="done"} 1`,
		"nchecker_scan_seconds_count 1",
		`nchecker_stage_seconds_total{stage="build"}`,
		"nchecker_queue_depth 0",
		"nchecker_degraded_scans_total 0",
	} {
		if !strings.Contains(metrics, want) {
			fail("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// A validated job: the ?validate=1 override replays every warning's
	// witness under injected disruptions, the fixture's defects must be
	// dynamically confirmed, and the validate counters reach /metrics.
	vjob := scanJob(client, "?name=smoke-validate.apk&validate=1", app, deadline)
	switch {
	case vjob.Warnings != job.Warnings:
		fail("validated job found %d warnings, unvalidated found %d", vjob.Warnings, job.Warnings)
	case !strings.Contains(vjob.ReportText, "Dynamic validation\n  confirmed"):
		fail("validated job %s has no confirmed verdict:\n%s", vjob.ID, vjob.ReportText)
	}
	fmt.Printf("servesmoke: validated job done, %d warnings\n", vjob.Warnings)
	metrics = getMetrics(client)
	for _, want := range []string{
		"nchecker_validate_confirmed_total",
		"nchecker_validate_replays_total",
	} {
		if !strings.Contains(metrics, want) {
			fail("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, "nchecker_validate_confirmed_total 0") {
		fail("validate confirmed counter stayed 0 after a confirmed job:\n%s", metrics)
	}
	fmt.Println("servesmoke: ok")
}

// scanJob submits one app and polls it to a clean `done`; any failure,
// degradation, or deadline overrun fails the smoke.
func scanJob(client *testutil.ScanClient, query string, app []byte, deadline time.Time) testutil.JobView {
	job, err := client.Submit(query, app)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("servesmoke: submitted %s\n", job.ID)
	job, err = client.Await(job.ID, deadline)
	switch {
	case err != nil:
		fail("%v", err)
	case job.Status != "done":
		fail("job %s finished %q (%s), want done", job.ID, job.Status, job.Error)
	case job.Degraded:
		fail("job %s degraded: %s", job.ID, job.Error)
	}
	return job
}

// getMetrics fetches /metrics and returns the Prometheus text body.
func getMetrics(client *testutil.ScanClient) string {
	metrics, err := client.Metrics()
	if err != nil {
		fail("%v", err)
	}
	return metrics
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servesmoke: "+format+"\n", args...)
	os.Exit(1)
}
