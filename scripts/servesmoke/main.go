// Command servesmoke is the CI smoke client for `nchecker serve`
// (scripts/check.sh drives it; no curl required in the container). It
// waits for the server's -ready-file, then exercises the service end to
// end: /healthz must answer 200, a POSTed fixture app must scan to a
// finished job with warnings and report text, and /metrics must expose
// the scan counters. Exit 0 on success, 1 with a message on any failure.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/android"
	"repro/internal/apk"
	"repro/internal/jimple"
)

func main() {
	readyFile := flag.String("ready-file", "", "file the server writes its bound address to")
	timeout := flag.Duration("timeout", 60*time.Second, "overall deadline")
	flag.Parse()
	if *readyFile == "" {
		fail("usage: servesmoke -ready-file PATH")
	}
	deadline := time.Now().Add(*timeout)

	addr := waitAddr(*readyFile, deadline)
	base := "http://" + addr
	fmt.Printf("servesmoke: server at %s\n", base)

	// Liveness first.
	if code := getStatus(base + "/healthz"); code != http.StatusOK {
		fail("GET /healthz = %d, want 200", code)
	}

	// Submit the fixture app (a buggy request with no connectivity check,
	// no timeout, no error handling — it must produce warnings).
	app, err := fixtureApp()
	if err != nil {
		fail("build fixture app: %v", err)
	}
	job := scanJob(base, "?name=smoke.apk", app, deadline)
	switch {
	case job.Warnings == 0:
		fail("job %s found no warnings in the buggy fixture", job.ID)
	case !strings.Contains(job.ReportText, "NPD Information"):
		fail("job %s report text missing the Figure 7 layout:\n%s", job.ID, job.ReportText)
	case strings.Contains(job.ReportText, "Dynamic validation"):
		fail("job %s report text carries a verdict without ?validate:\n%s", job.ID, job.ReportText)
	}
	fmt.Printf("servesmoke: job done, %d warnings\n", job.Warnings)

	// The scan must be visible on /metrics.
	metrics := getMetrics(base)
	for _, want := range []string{
		"nchecker_jobs_submitted_total 1",
		`nchecker_jobs_total{status="done"} 1`,
		"nchecker_scan_seconds_count 1",
		`nchecker_stage_seconds_total{stage="build"}`,
		"nchecker_queue_depth 0",
		"nchecker_degraded_scans_total 0",
	} {
		if !strings.Contains(metrics, want) {
			fail("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// A validated job: the ?validate=1 override replays every warning's
	// witness under injected disruptions, the fixture's defects must be
	// dynamically confirmed, and the validate counters reach /metrics.
	vjob := scanJob(base, "?name=smoke-validate.apk&validate=1", app, deadline)
	switch {
	case vjob.Warnings != job.Warnings:
		fail("validated job found %d warnings, unvalidated found %d", vjob.Warnings, job.Warnings)
	case !strings.Contains(vjob.ReportText, "Dynamic validation\n  confirmed"):
		fail("validated job %s has no confirmed verdict:\n%s", vjob.ID, vjob.ReportText)
	}
	fmt.Printf("servesmoke: validated job done, %d warnings\n", vjob.Warnings)
	metrics = getMetrics(base)
	for _, want := range []string{
		"nchecker_validate_confirmed_total",
		"nchecker_validate_replays_total",
	} {
		if !strings.Contains(metrics, want) {
			fail("/metrics missing %q:\n%s", want, metrics)
		}
	}
	if strings.Contains(metrics, "nchecker_validate_confirmed_total 0") {
		fail("validate confirmed counter stayed 0 after a confirmed job:\n%s", metrics)
	}
	fmt.Println("servesmoke: ok")
}

// jobRecord is the subset of the job JSON the smoke asserts on.
type jobRecord struct {
	ID         string `json:"id"`
	Status     string `json:"status"`
	Warnings   int    `json:"warnings"`
	Degraded   bool   `json:"degraded"`
	ReportText string `json:"reportText"`
	Error      string `json:"error"`
}

// scanJob submits one app and polls it to a clean `done`; any failure,
// degradation, or deadline overrun fails the smoke.
func scanJob(base, query string, app []byte, deadline time.Time) jobRecord {
	resp, err := http.Post(base+"/scan"+query, "application/octet-stream", bytes.NewReader(app))
	if err != nil {
		fail("POST /scan%s: %v", query, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		fail("POST /scan%s = %d: %s", query, resp.StatusCode, body)
	}
	var job jobRecord
	if err := json.Unmarshal(body, &job); err != nil {
		fail("POST /scan%s response: %v: %s", query, err, body)
	}
	if job.ID == "" {
		fail("POST /scan%s response has no job id: %s", query, body)
	}
	fmt.Printf("servesmoke: submitted %s\n", job.ID)

	// Poll the report until the job reaches a terminal status.
	for {
		resp, err := http.Get(base + "/scan/" + job.ID)
		if err != nil {
			fail("GET /scan/%s: %v", job.ID, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fail("GET /scan/%s = %d: %s", job.ID, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			fail("GET /scan/%s response: %v", job.ID, err)
		}
		if job.Status == "done" || job.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			fail("job %s still %q at deadline", job.ID, job.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	switch {
	case job.Status != "done":
		fail("job %s finished %q (%s), want done", job.ID, job.Status, job.Error)
	case job.Degraded:
		fail("job %s degraded: %s", job.ID, job.Error)
	}
	return job
}

// getMetrics fetches /metrics and returns the Prometheus text body.
func getMetrics(base string) string {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fail("GET /metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("GET /metrics = %d", resp.StatusCode)
	}
	return string(metrics)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "servesmoke: "+format+"\n", args...)
	os.Exit(1)
}

// waitAddr polls for the server's -ready-file and returns the bound
// address written there.
func waitAddr(path string, deadline time.Time) string {
	for {
		if b, err := os.ReadFile(path); err == nil {
			if addr := strings.TrimSpace(string(b)); addr != "" {
				return addr
			}
		}
		if time.Now().After(deadline) {
			fail("server never wrote %s", path)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func getStatus(url string) int {
	resp, err := http.Get(url)
	if err != nil {
		fail("GET %s: %v", url, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// fixtureApp encodes the canonical buggy app: an Activity firing a
// BasicHttpClient request with no connectivity check, no timeout
// configuration, and no response handling.
func fixtureApp() ([]byte, error) {
	prog, err := jimple.Parse(`class demo.Main extends android.app.Activity {
  method onCreate(android.os.Bundle)void {
    local c com.turbomanage.httpclient.BasicHttpClient
    local r com.turbomanage.httpclient.HttpResponse
    local b java.lang.String
    c = new com.turbomanage.httpclient.BasicHttpClient
    specialinvoke c com.turbomanage.httpclient.BasicHttpClient.<init>()void
    r = virtualinvoke c com.turbomanage.httpclient.BasicHttpClient.get(java.lang.String)com.turbomanage.httpclient.HttpResponse "http://example.com"
    b = virtualinvoke r com.turbomanage.httpclient.HttpResponse.getBodyAsString()java.lang.String
    return
  }
}`)
	if err != nil {
		return nil, err
	}
	man := &android.Manifest{Package: "demo", Activities: []string{"demo.Main"}}
	man.Normalize()
	return apk.Encode(&apk.App{Manifest: man, Program: prog})
}
