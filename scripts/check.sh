#!/bin/sh
# check.sh — the repository's CI gate: formatting, vet, build, and the
# full test suite under the race detector. Run from the repo root:
#
#   ./scripts/check.sh        (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal examples bench_test.go)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "check: all green"
