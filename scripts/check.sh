#!/bin/sh
# check.sh — the repository's CI gate: formatting, vet, build, and the
# full test suite under the race detector. Run from the repo root:
#
#   ./scripts/check.sh        (or: make check)
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l cmd internal examples scripts bench_test.go fleet_bench_test.go)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

# Deeper linters run when installed; CI images without them still get the
# vet gate above, so the script works offline and in the minimal container.
echo "== staticcheck =="
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not installed; skipping"
fi

echo "== govulncheck =="
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
else
    echo "govulncheck not installed; skipping"
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
# -timeout turns a hung test (e.g. a scan that stopped honoring its
# deadline) into a gate failure instead of a stalled CI job.
go test -race -timeout 10m ./...

echo "== go test -race (persistent cache on) =="
# The differential cache harness normally runs against throwaway temp
# dirs; NCHECKER_TEST_CACHEDIR points it at one shared on-disk store so
# the cache-sensitive packages also pass with a real, reused directory.
cachedir=$(mktemp -d)
trap 'rm -rf "$cachedir"' EXIT
NCHECKER_TEST_CACHEDIR="$cachedir" go test -race -timeout 10m \
    ./internal/cachestore ./internal/checkers ./internal/experiments

echo "== targeted-mode differential =="
# End to end through the CLI: -mode=full and -mode=targeted over the
# same generated app containers (padded so the targeted engine really
# skips classes) must print byte-identical reports and exit alike.
diffdir=$(mktemp -d)
trap 'rm -rf "$cachedir" "$diffdir"' EXIT
go build -o "$diffdir/nchecker" ./cmd/nchecker
go run ./cmd/appgen -out "$diffdir/corpus" -n 24 -pad 40 >/dev/null
full_status=0
"$diffdir/nchecker" -mode=full "$diffdir"/corpus/*.apk >"$diffdir/full.txt" || full_status=$?
targeted_status=0
"$diffdir/nchecker" -mode=targeted "$diffdir"/corpus/*.apk >"$diffdir/targeted.txt" || targeted_status=$?
if [ "$full_status" -ne "$targeted_status" ]; then
    echo "targeted differential: exit codes differ (full=$full_status targeted=$targeted_status)" >&2
    exit 1
fi
cmp "$diffdir/full.txt" "$diffdir/targeted.txt"

echo "== validate smoke =="
# -validate must stamp verdicts (at least one dynamically confirmed
# warning on the buggy corpus) without changing the warning set or the
# exit code.
validate_status=0
"$diffdir/nchecker" -validate "$diffdir"/corpus/*.apk >"$diffdir/validated.txt" || validate_status=$?
if [ "$full_status" -ne "$validate_status" ]; then
    echo "validate smoke: exit codes differ (plain=$full_status validate=$validate_status)" >&2
    exit 1
fi
if ! grep -A1 "^Dynamic validation$" "$diffdir/validated.txt" | grep -q "confirmed"; then
    echo "validate smoke: no confirmed verdict in the validated reports" >&2
    exit 1
fi
if grep -q "Dynamic validation" "$diffdir/full.txt"; then
    echo "validate smoke: verdicts leaked into the unvalidated reports" >&2
    exit 1
fi

echo "== checker ablation smoke =="
# -checkers=5-8 must report exactly the full run's warnings for the new
# families and nothing else: per-app per-cause summary counts filtered
# to family 5-8 causes must be byte-identical between the two runs.
newfam='offline-state-no-recovery|stale-connectivity-check|cleartext-endpoint|hardcoded-ip-endpoint|aggressive-retry-loop|retry-storm'
"$diffdir/nchecker" -summary "$diffdir"/corpus/*.apk >"$diffdir/fullsum.txt" || true
"$diffdir/nchecker" -summary -checkers=5-8 "$diffdir"/corpus/*.apk >"$diffdir/ablated.txt" || true
grep -E "$newfam" "$diffdir/fullsum.txt" >"$diffdir/full58.txt" || true
grep -E "$newfam" "$diffdir/ablated.txt" >"$diffdir/ablated58.txt" || true
if ! cmp "$diffdir/full58.txt" "$diffdir/ablated58.txt"; then
    echo "checker ablation: family 5-8 warnings differ between -checkers=5-8 and the full run" >&2
    exit 1
fi
if grep -vE "$newfam" "$diffdir/ablated.txt" | grep -vE '^== ' | grep -q .; then
    echo "checker ablation: -checkers=5-8 emitted warnings outside families 5-8" >&2
    exit 1
fi

echo "== targeted scaling bench smoke =="
# One iteration per cell keeps the gate fast while proving the six
# BenchmarkScanMode{Full,Targeted}{1x,10x,100x} cells still run and
# regenerate BENCH_targeted.json's headline numbers.
go test -run='^$' -bench='^BenchmarkScanMode' -benchtime=1x -timeout 10m .

echo "== cold-scan allocation smoke =="
# Regenerates BENCH_cold.json's smoke section (-short scans the first
# coldSmokeApps corpus apps) into an artifacts dir — BENCH_COLD_OUT keeps
# the committed file untouched — then gates allocs/op against the
# committed smoke entry: a >15% regression fails. CPU and allocation
# pprof profiles land beside the regenerated file for triage.
benchart="${BENCH_ARTIFACTS:-bench-artifacts}"
mkdir -p "$benchart"
committed=$(grep -o '"allocs_per_op": *[0-9]*' BENCH_cold.json | tail -n 1 | tr -dc 0-9)
if [ -z "$committed" ]; then
    echo "cold-scan smoke: BENCH_cold.json has no smoke allocs_per_op entry" >&2
    exit 1
fi
BENCH_COLD_OUT="$benchart/BENCH_cold.json" go test -run='^$' -short \
    -bench='^BenchmarkScanCorpusCold$' -benchtime=3x -benchmem -timeout 10m \
    -cpuprofile "$benchart/cold.cpu.pprof" -memprofile "$benchart/cold.mem.pprof" \
    -o "$benchart/bench.test" .
fresh=$(grep -o '"allocs_per_op": *[0-9]*' "$benchart/BENCH_cold.json" | tail -n 1 | tr -dc 0-9)
echo "cold-scan smoke allocs/op: committed=$committed fresh=$fresh (artifacts in $benchart/)"
if [ "$fresh" -gt $((committed * 115 / 100)) ]; then
    echo "cold-scan smoke: allocs/op regressed >15% ($committed -> $fresh);" \
        "profiles in $benchart/ — if intentional, regenerate BENCH_cold.json" \
        "with: go test -run='^\$' -short -bench='^BenchmarkScanCorpusCold\$' -benchmem ." >&2
    exit 1
fi

echo "== serve smoke =="
# End-to-end over a real socket: start `nchecker serve` on an ephemeral
# port, have scripts/servesmoke POST a fixture app, poll the report, and
# assert /healthz and the /metrics scan counters; then a clean SIGTERM
# drain must exit 0.
smokedir=$(mktemp -d)
trap 'rm -rf "$cachedir" "$diffdir" "$smokedir"; [ -n "${serve_pid:-}" ] && kill "$serve_pid" 2>/dev/null || true' EXIT
go build -o "$smokedir/nchecker" ./cmd/nchecker
"$smokedir/nchecker" serve -addr 127.0.0.1:0 -ready-file "$smokedir/ready" \
    -cache "$smokedir/cache" 2>"$smokedir/serve.log" &
serve_pid=$!
if ! go run ./scripts/servesmoke -ready-file "$smokedir/ready"; then
    echo "serve smoke failed; server log:" >&2
    cat "$smokedir/serve.log" >&2
    exit 1
fi
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "serve did not shut down cleanly; server log:" >&2
    cat "$smokedir/serve.log" >&2
    exit 1
fi
serve_pid=

echo "== fleet smoke =="
# Coordinator + 2 workers on ephemeral ports: the same app containers
# scanned through the fleet must print byte-identical output to the
# single-process CLI, and all three processes must drain cleanly on
# SIGTERM.
trap 'rm -rf "$cachedir" "$diffdir" "$smokedir"; for p in "${serve_pid:-}" "${coord_pid:-}" "${w1_pid:-}" "${w2_pid:-}"; do [ -n "$p" ] && kill "$p" 2>/dev/null || true; done' EXIT
"$smokedir/nchecker" coord -addr 127.0.0.1:0 -ready-file "$smokedir/coord.ready" \
    2>"$smokedir/coord.log" &
coord_pid=$!
coord_addr=""
for i in $(seq 1 100); do
    [ -s "$smokedir/coord.ready" ] && { coord_addr=$(head -n1 "$smokedir/coord.ready"); break; }
    sleep 0.1
done
if [ -z "$coord_addr" ]; then
    echo "fleet smoke: coordinator never wrote its ready file" >&2
    cat "$smokedir/coord.log" >&2
    exit 1
fi
"$smokedir/nchecker" serve -addr 127.0.0.1:0 -ready-file "$smokedir/w1.ready" \
    -coord "http://$coord_addr" 2>"$smokedir/w1.log" &
w1_pid=$!
"$smokedir/nchecker" serve -addr 127.0.0.1:0 -ready-file "$smokedir/w2.ready" \
    -coord "http://$coord_addr" 2>"$smokedir/w2.log" &
w2_pid=$!
single_status=0
"$smokedir/nchecker" "$diffdir"/corpus/*.apk >"$smokedir/single.txt" || single_status=$?
if [ "$single_status" -gt 1 ]; then
    echo "fleet smoke: single-process reference run failed (exit $single_status)" >&2
    exit 1
fi
if ! go run ./scripts/fleetsmoke -ready-file "$smokedir/coord.ready" \
    -out "$smokedir/fleet.txt" "$diffdir"/corpus/*.apk; then
    echo "fleet smoke failed; logs:" >&2
    cat "$smokedir/coord.log" "$smokedir/w1.log" "$smokedir/w2.log" >&2
    exit 1
fi
cmp "$smokedir/single.txt" "$smokedir/fleet.txt"
for p in "$w1_pid" "$w2_pid" "$coord_pid"; do
    kill -TERM "$p"
    if ! wait "$p"; then
        echo "fleet smoke: process $p did not shut down cleanly; logs:" >&2
        cat "$smokedir/coord.log" "$smokedir/w1.log" "$smokedir/w2.log" >&2
        exit 1
    fi
done
coord_pid=; w1_pid=; w2_pid=

echo "== fuzz smoke =="
# Short fuzz bursts over the untrusted-input parsers: new panics or
# round-trip breaks fail the gate; found inputs land in testdata/fuzz as
# regression cases.
go test -run='^$' -fuzz=FuzzDecode -fuzztime=10s -timeout 5m ./internal/dex
go test -run='^$' -fuzz=FuzzTargetSiteSearch -fuzztime=10s -timeout 5m ./internal/dex
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s -timeout 5m ./internal/jimple
go test -run='^$' -fuzz=FuzzCacheEntry -fuzztime=10s -timeout 5m ./internal/cachestore

echo "check: all green"
